package controller

import (
	"crypto/ed25519"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"oddci/internal/control"
	"oddci/internal/core/instance"
	"oddci/internal/dsmcc"
	"oddci/internal/middleware"
	"oddci/internal/simtime"
)

// BenchmarkHandleHeartbeat measures the consolidation hot path — the
// operation that bounds how many devices one Controller can track.
func BenchmarkHandleHeartbeat(b *testing.B) {
	clk := simtime.NewSim(time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC))
	car, err := dsmcc.NewCarousel(0x300, 0)
	if err != nil {
		b.Fatal(err)
	}
	bcast, err := dsmcc.NewBroadcaster(clk, car, 1e6)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	_, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := New(Config{
		Clock: clk, Broadcaster: bcast,
		Signalling: middleware.NewSignalling(clk, 0),
		Key:        priv, Rng: rng,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := ctrl.Start(); err != nil {
		b.Fatal(err)
	}
	defer ctrl.Stop()

	hb := &control.Heartbeat{
		State:   control.StateIdle,
		Profile: instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100},
		SentAt:  clk.Now(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hb.NodeID = uint64(i%100000) + 1
		ctrl.HandleHeartbeat(hb)
	}
}

// BenchmarkHeartbeatCodec measures the wire codec used on every report.
func BenchmarkHeartbeatCodec(b *testing.B) {
	hb := &control.Heartbeat{
		NodeID: 42, State: control.StateBusy, InstanceID: 7,
		Profile: instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100},
		SentAt:  time.Unix(0, 0),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := control.EncodeHeartbeat(hb)
		if _, err := control.DecodeHeartbeat(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHandleHeartbeatParallel drives the sharded consolidator from
// all cores: the scalability answer to the paper's footnote 3.
func BenchmarkHandleHeartbeatParallel(b *testing.B) {
	clk := simtime.NewSim(time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC))
	car, err := dsmcc.NewCarousel(0x300, 0)
	if err != nil {
		b.Fatal(err)
	}
	bcast, err := dsmcc.NewBroadcaster(clk, car, 1e6)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	_, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := New(Config{
		Clock: clk, Broadcaster: bcast,
		Signalling: middleware.NewSignalling(clk, 0),
		Key:        priv, Rng: rng,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := ctrl.Start(); err != nil {
		b.Fatal(err)
	}
	defer ctrl.Stop()
	profile := instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100}
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := next.Add(1) << 32
		i := uint64(0)
		hb := &control.Heartbeat{State: control.StateIdle, Profile: profile, SentAt: clk.Now()}
		for pb.Next() {
			i++
			hb.NodeID = base | (i % 100000)
			ctrl.HandleHeartbeat(hb)
		}
	})
}
