package controller

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"oddci/internal/control"
	"oddci/internal/dsmcc"
	"oddci/internal/netsim"
)

// flakyHead wraps a HeadEnd so carousel updates fail according to a
// deterministic netsim.FaultPlan. Start is never injected: the tests
// target steady-state refresh, not bring-up.
type flakyHead struct {
	inner HeadEnd
	plan  *netsim.FaultPlan
}

func (f *flakyHead) Start(files []dsmcc.File) error { return f.inner.Start(files) }

func (f *flakyHead) Update(files []dsmcc.File) error {
	if f.plan.Next() {
		return errors.New("injected head-end update failure")
	}
	return f.inner.Update(files)
}

func newFlakyRig(t *testing.T, plan *netsim.FaultPlan, tweak func(*Config)) *rig {
	t.Helper()
	return newRigWith(t, func(h HeadEnd) HeadEnd { return &flakyHead{inner: h, plan: plan} }, tweak)
}

// onAirFiles counts committed carousel files (xlet + control file +
// one image per live instance).
func (r *rig) onAirFiles() int { return len(r.car.Files()) }

func TestDestroyedInstanceGCdAfterRetransmitWindow(t *testing.T) {
	var events []LifecycleEvent
	r := newRigWith(t, nil, func(cfg *Config) {
		cfg.ResetRetransmitTicks = 2
		cfg.OnLifecycle = func(ev LifecycleEvent) { events = append(events, ev) }
	})
	id, err := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 4, InitialProbability: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	r.advance(5 * time.Second)
	if got := r.onAirFiles(); got != 3 {
		t.Fatalf("on-air files with one live instance = %d, want 3", got)
	}
	if err := r.ctrl.DestroyInstance(id); err != nil {
		t.Fatal(err)
	}
	// During the retransmission window the reset envelope is on air and
	// Status reports the destroyed state with zeroed gauges.
	r.advance(5 * time.Second)
	msgs, err := control.OpenAll(r.currentControlFile(t), r.pub)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("envelopes during window = %d, want 1 reset", len(msgs))
	}
	if rst, ok := msgs[0].(*control.Reset); !ok || rst.InstanceID != id {
		t.Fatalf("on-air message %T %+v, want reset for %d", msgs[0], msgs[0], id)
	}
	st, err := r.ctrl.Status(id)
	if err != nil {
		t.Fatalf("Status during window: %v", err)
	}
	if !st.Destroyed || st.Busy != 0 || st.Target != 0 || st.Trimming != 0 {
		t.Fatalf("destroyed status not zeroed: %+v", st)
	}
	// Two maintenance passes (2 × 30s) exhaust the window; the instance
	// is then GC'd and the head-end returns to baseline.
	r.advance(2 * time.Minute)
	if raw := r.currentControlFile(t); len(raw) != 0 {
		t.Fatalf("control file after GC = %d bytes, want 0", len(raw))
	}
	if got := r.onAirFiles(); got != 2 {
		t.Fatalf("on-air files after GC = %d, want 2 (xlet + config)", got)
	}
	if _, err := r.ctrl.Status(id); !errors.Is(err, ErrInstanceGone) {
		t.Fatalf("Status after GC = %v, want ErrInstanceGone", err)
	}
	if _, err := r.ctrl.Status(id + 100); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("Status of never-issued ID = %v, want ErrUnknownInstance", err)
	}
	if err := r.ctrl.Resize(id, 9); !errors.Is(err, ErrInstanceGone) {
		t.Fatalf("Resize after GC = %v, want ErrInstanceGone", err)
	}
	var kinds []LifecycleKind
	for _, ev := range events {
		if ev.Instance == id {
			kinds = append(kinds, ev.Kind)
		}
	}
	want := []LifecycleKind{LifecycleCreated, LifecycleDestroyed, LifecycleGCed}
	if len(kinds) != len(want) {
		t.Fatalf("lifecycle kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("lifecycle kinds = %v, want %v", kinds, want)
		}
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

func TestRefreshRetryBacksOffAndRecovers(t *testing.T) {
	plan := netsim.NewFaultPlan(nil, 0, 0)
	retries, recovered := 0, 0
	r := newFlakyRig(t, plan, func(cfg *Config) {
		cfg.RefreshRetryBase = 2 * time.Second
		cfg.RefreshRetryMax = 8 * time.Second
		cfg.OnLifecycle = func(ev LifecycleEvent) {
			switch ev.Kind {
			case LifecycleRefreshRetry:
				retries++
			case LifecycleRefreshRecovered:
				recovered++
			}
		}
	})
	id, err := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 2, InitialProbability: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	r.advance(5 * time.Second)

	// The next three head-end updates fail; DestroyInstance must still
	// commit the destruction and hand the broadcast to the retry path.
	plan.FailNext(3)
	if err := r.ctrl.DestroyInstance(id); err != nil {
		t.Fatalf("DestroyInstance with failing head-end: %v", err)
	}
	if pending, attempts := r.ctrl.RefreshPending(); !pending || attempts != 1 {
		t.Fatalf("pending=%v attempts=%d after failed destroy refresh", pending, attempts)
	}
	st, err := r.ctrl.Status(id)
	if err != nil || !st.Destroyed {
		t.Fatalf("destruction did not commit: %+v %v", st, err)
	}
	// Backoff: retries at +2s and +6s also fail; the +14s retry (8s cap
	// would give 2,4,8) succeeds. Well before the first maintenance
	// pass at 30s, so the recovery is the timer's doing.
	r.advance(20 * time.Second)
	if pending, _ := r.ctrl.RefreshPending(); pending {
		t.Fatal("refresh still pending after retries should have drained")
	}
	if retries != 3 || recovered != 1 {
		t.Fatalf("retry events = %d, recovered = %d; want 3 and 1", retries, recovered)
	}
	msgs, err := control.OpenAll(r.currentControlFile(t), r.pub)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("envelopes after recovery = %d, want 1", len(msgs))
	}
	if rst, ok := msgs[0].(*control.Reset); !ok || rst.InstanceID != id {
		t.Fatalf("on-air message %T, want reset for %d", msgs[0], id)
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

func TestCreateRollsBackWhenStagingFails(t *testing.T) {
	plan := netsim.NewFaultPlan(nil, 0, 0)
	r := newFlakyRig(t, plan, nil)
	plan.FailNext(1)
	if _, err := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 3, InitialProbability: 0.5}); err == nil {
		t.Fatal("CreateInstance succeeded despite staging failure")
	}
	if bytes, files, live, onAir := r.ctrl.ContentStats(); bytes != 0 || files != 2 || live != 0 || onAir != 0 {
		t.Fatalf("state after rollback: bytes=%d files=%d live=%d onAir=%d", bytes, files, live, onAir)
	}
	if pending, _ := r.ctrl.RefreshPending(); pending {
		t.Fatal("rolled-back create left a refresh pending")
	}
	// The controller recovers fully: the next create succeeds and goes
	// on air alone.
	id, err := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 3, InitialProbability: 0.5})
	if err != nil {
		t.Fatalf("create after rollback: %v", err)
	}
	r.advance(5 * time.Second)
	msgs, err := control.OpenAll(r.currentControlFile(t), r.pub)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("envelopes = %d, want 1", len(msgs))
	}
	if w, ok := msgs[0].(*control.Wakeup); !ok || w.InstanceID != id {
		t.Fatalf("on-air message %T, want wakeup for %d", msgs[0], id)
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

func TestDestroyCreateCyclesReturnToBaseline(t *testing.T) {
	r := newRigWith(t, nil, func(cfg *Config) { cfg.ResetRetransmitTicks = 1 })
	r.advance(time.Second)
	baseBytes, baseFiles, _, _ := r.ctrl.ContentStats()
	for cycle := 0; cycle < 5; cycle++ {
		id, err := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 2, InitialProbability: 0.5})
		if err != nil {
			t.Fatalf("cycle %d create: %v", cycle, err)
		}
		r.advance(5 * time.Second)
		if err := r.ctrl.DestroyInstance(id); err != nil {
			t.Fatalf("cycle %d destroy: %v", cycle, err)
		}
		// One maintenance pass burns the retransmission tick, the next
		// GC pass collects; 90s covers both from any phase offset.
		r.advance(90 * time.Second)
		bytes, files, live, onAir := r.ctrl.ContentStats()
		if bytes != baseBytes || files != baseFiles || live != 0 || onAir != 0 {
			t.Fatalf("cycle %d did not return to baseline: bytes=%d files=%d live=%d onAir=%d",
				cycle, bytes, files, live, onAir)
		}
		if got := r.onAirFiles(); got != 2 {
			t.Fatalf("cycle %d on-air files = %d, want 2", cycle, got)
		}
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

// TestChurnWithInjectedFaultsStaysBounded cycles create→destroy under
// probabilistic head-end failures and checks the control plane never
// accumulates state: live instances and on-air resets stay bounded
// during the run and drain to zero afterwards.
func TestChurnWithInjectedFaultsStaysBounded(t *testing.T) {
	plan := netsim.NewFaultPlan(rand.New(rand.NewSource(11)), 0.3, 3)
	r := newFlakyRig(t, plan, func(cfg *Config) {
		cfg.ResetRetransmitTicks = 2
		cfg.RefreshRetryBase = 2 * time.Second
		cfg.RefreshRetryMax = 8 * time.Second
	})
	created := 0
	for cycle := 0; cycle < 120; cycle++ {
		id, err := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 2, InitialProbability: 0.5})
		if err != nil {
			// Injected staging failure: rolled back, try next cycle.
			r.advance(10 * time.Second)
			continue
		}
		created++
		r.advance(10 * time.Second)
		if err := r.ctrl.DestroyInstance(id); err != nil {
			t.Fatalf("cycle %d destroy: %v", cycle, err)
		}
		r.advance(10 * time.Second)
		_, files, live, onAir := r.ctrl.ContentStats()
		if live > 1 || onAir > 4 || files > 3+4 {
			t.Fatalf("cycle %d state unbounded: files=%d live=%d onAir=%d", cycle, files, live, onAir)
		}
	}
	if created < 60 {
		t.Fatalf("only %d/120 cycles created an instance; fault plan too hostile", created)
	}
	// Quiet period: retries and the GC window drain everything.
	r.advance(5 * time.Minute)
	bytes, files, live, onAir := r.ctrl.ContentStats()
	if bytes != 0 || files != 2 || live != 0 || onAir != 0 {
		t.Fatalf("post-churn state: bytes=%d files=%d live=%d onAir=%d", bytes, files, live, onAir)
	}
	if raw := r.currentControlFile(t); len(raw) != 0 {
		t.Fatalf("on-air control file after drain = %d bytes", len(raw))
	}
	injected, failed := plan.Stats()
	if failed == 0 {
		t.Fatalf("fault plan injected %d updates but failed none; test exercised nothing", injected)
	}
	r.ctrl.Stop()
	r.clk.Wait()
}
