// Package controller implements the OddCI Controller: the component
// "in charge of setting up the infrastructure, as instructed by the
// Provider, by formatting and sending through the broadcast channel the
// control messages, including software images, necessary for building
// and maintaining the OddCI instances" (§3.1).
//
// Concretely it owns the head-end: the DSM-CC carousel (PNA Xlet +
// signed control file + application images) and the AIT signalling. On
// the return path it consolidates PNA heartbeats, maintains instance
// sizes (rebroadcasting wakeups to recompose instances that lost nodes,
// trimming excess via reset commands in heartbeat replies), and reports
// consolidated state to the Provider.
package controller

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"oddci/internal/ait"
	"oddci/internal/appimage"
	"oddci/internal/control"
	"oddci/internal/core/instance"
	"oddci/internal/dsmcc"
	"oddci/internal/journal"
	"oddci/internal/middleware"
	"oddci/internal/netsim"
	"oddci/internal/obs"
	"oddci/internal/simtime"
	"oddci/internal/span"
)

// HeadEnd is the transmitter-side view of any cyclic file-broadcast
// service the Controller can manage content on: the DSM-CC carousel
// broadcaster or an IP-multicast caster.
type HeadEnd interface {
	// Start begins cycling the initial contents.
	Start(files []dsmcc.File) error
	// Update replaces the contents at the next cycle boundary.
	Update(files []dsmcc.File) error
}

// Config assembles a Controller.
type Config struct {
	Clock       simtime.Clock
	Broadcaster HeadEnd
	Signalling  *middleware.Signalling
	// Key signs broadcast control messages.
	Key ed25519.PrivateKey
	// PNAXlet is the agent code carried in the carousel; PNAClassFile
	// names it (default "pna.xlet").
	PNAXlet      []byte
	PNAClassFile string
	// OrgID identifies the broadcaster in AIT entries.
	OrgID uint32
	// MaintenancePeriod is the instance-size control loop interval.
	MaintenancePeriod time.Duration
	// ResetRetransmitTicks is how many maintenance passes a destroyed
	// instance's reset envelope stays on the carousel before the
	// instance is garbage-collected from the head-end. It must cover
	// the longest interval a grace-windowed PNA can go without reading
	// the control file (default 3).
	ResetRetransmitTicks int
	// RefreshRetryBase and RefreshRetryMax bound the exponential
	// backoff applied when a head-end update fails: the first retry
	// waits RefreshRetryBase, doubling up to RefreshRetryMax
	// (defaults 5 s and 2 min). The maintenance loop also retries
	// pending refreshes on its own cadence.
	RefreshRetryBase time.Duration
	RefreshRetryMax  time.Duration
	// HeartbeatGrace is how many heartbeat periods may elapse before a
	// silent node is presumed gone.
	HeartbeatGrace int
	// SafetyFactor overshoots recomposition probabilities to converge
	// faster under estimation error.
	SafetyFactor float64
	// TargetHeartbeatRate, if positive, bounds the Controller's inbound
	// heartbeat load: idle nodes are re-tuned (via heartbeat replies) so
	// the whole population produces about this many heartbeats per
	// second — §3.2's requirement that PNAs "be appropriately configured
	// by the Controller so that the handling of these messages will not
	// consume too much of the Controller's ... resources". Busy nodes
	// keep their instance's period.
	TargetHeartbeatRate float64
	// MinHeartbeatPeriod and MaxHeartbeatPeriod clamp the adaptive
	// period (defaults 10 s and 30 min).
	MinHeartbeatPeriod time.Duration
	MaxHeartbeatPeriod time.Duration
	// OnWakeup, if set, observes every wakeup broadcast (initial and
	// recompositions) — the tracing hook.
	OnWakeup func(id instance.ID, seq uint32, probability float64)
	// OnImageUpdate, if set, observes Recompose image replacements after
	// they commit — the hook that lets a TCP coordinator ride the same
	// update onto its delta_img plane (Coordinator.UpdateImage). Like
	// OnWakeup it runs with the Controller lock held and must not call
	// back into the Controller.
	OnImageUpdate func(id instance.ID, img *appimage.Image)
	// OnLifecycle, if set, observes instance lifecycle transitions and
	// head-end refresh retries. Like OnWakeup it runs with Controller
	// locks held and must not call back into the Controller.
	OnLifecycle func(ev LifecycleEvent)
	// Obs, if set, receives live telemetry (oddci_controller_* metrics)
	// and the carousel-refresh / heartbeat-silence health checks. Hot
	// paths touch only pre-created handles via atomics.
	Obs *obs.Registry
	// RefreshStuckAfter is the consecutive failed-refresh count at which
	// the carousel-refresh health check reports unhealthy (default 3).
	RefreshStuckAfter int
	// HeartbeatSilence is the no-heartbeats-at-all window after which
	// the heartbeat-silence health check reports unhealthy while nodes
	// are tracked (default 3×MaxHeartbeatPeriod).
	HeartbeatSilence time.Duration
	// Spans, if set, records causal spans: every wakeup broadcast
	// (initial and recompositions) starts a root span, published in the
	// collector's link table under (instance, seq) so joining PNAs can
	// parent their join spans without widening the signed control
	// codec. Lifecycle mutations (destroy, trim) record spans too.
	Spans *span.Collector
	// Rng seeds sequence jitter; required.
	Rng *rand.Rand
	// Journal, if set, makes the control plane durable: lifecycle
	// mutations (create/resize/recompose/destroy/gc) are appended as
	// they commit, and New replays the store's snapshot+journal so a
	// restarted Controller re-enters the carousel at the recorded
	// generation instead of re-staging every image. Live nodes are
	// re-adopted from their next heartbeat — never re-woken.
	Journal *journal.Store
}

func (c *Config) fill() error {
	if c.Clock == nil || c.Broadcaster == nil || c.Signalling == nil {
		return errors.New("controller: clock, broadcaster and signalling are required")
	}
	if len(c.Key) == 0 {
		return errors.New("controller: signing key is required")
	}
	if c.Rng == nil {
		return errors.New("controller: rng is required")
	}
	if c.PNAClassFile == "" {
		c.PNAClassFile = "pna.xlet"
	}
	if len(c.PNAXlet) == 0 {
		c.PNAXlet = []byte("oddci-pna-xlet-v1")
	}
	if c.MaintenancePeriod <= 0 {
		c.MaintenancePeriod = time.Minute
	}
	if c.HeartbeatGrace <= 0 {
		c.HeartbeatGrace = 3
	}
	if c.SafetyFactor <= 0 {
		c.SafetyFactor = 1.2
	}
	if c.MinHeartbeatPeriod <= 0 {
		c.MinHeartbeatPeriod = 10 * time.Second
	}
	if c.MaxHeartbeatPeriod <= 0 {
		c.MaxHeartbeatPeriod = 30 * time.Minute
	}
	if c.ResetRetransmitTicks <= 0 {
		c.ResetRetransmitTicks = 3
	}
	if c.RefreshRetryBase <= 0 {
		c.RefreshRetryBase = 5 * time.Second
	}
	if c.RefreshRetryMax < c.RefreshRetryBase {
		c.RefreshRetryMax = 2 * time.Minute
		if c.RefreshRetryMax < c.RefreshRetryBase {
			c.RefreshRetryMax = c.RefreshRetryBase
		}
	}
	if c.RefreshStuckAfter <= 0 {
		c.RefreshStuckAfter = 3
	}
	if c.HeartbeatSilence <= 0 {
		c.HeartbeatSilence = 3 * c.MaxHeartbeatPeriod
	}
	return nil
}

// LifecycleKind classifies a LifecycleEvent.
type LifecycleKind uint8

// Lifecycle event kinds: the instance state machine
// (live → destroyed → reset-on-air → GC'd) plus head-end refresh
// health.
const (
	LifecycleCreated LifecycleKind = iota + 1
	LifecycleRecomposed
	LifecycleTrimmed
	LifecycleDestroyed
	LifecycleGCed
	LifecycleRefreshRetry
	LifecycleRefreshRecovered
)

// String implements fmt.Stringer.
func (k LifecycleKind) String() string {
	switch k {
	case LifecycleCreated:
		return "created"
	case LifecycleRecomposed:
		return "recomposed"
	case LifecycleTrimmed:
		return "trimmed"
	case LifecycleDestroyed:
		return "destroyed"
	case LifecycleGCed:
		return "gc"
	case LifecycleRefreshRetry:
		return "refresh-retry"
	case LifecycleRefreshRecovered:
		return "refresh-recovered"
	default:
		return fmt.Sprintf("LifecycleKind(%d)", uint8(k))
	}
}

// LifecycleEvent is one Config.OnLifecycle observation.
type LifecycleEvent struct {
	Kind     LifecycleKind
	Instance instance.ID // 0 for head-end-wide refresh events
	Node     uint64      // set for trim events
	Seq      uint32      // instance sequence at the transition
	// Attempt is the consecutive failed-refresh count (refresh events).
	Attempt int
}

// Lifecycle errors, distinguishable with errors.Is.
var (
	// ErrUnknownInstance reports an ID the Controller never issued.
	ErrUnknownInstance = errors.New("controller: unknown instance")
	// ErrInstanceGone reports an instance that was destroyed (and
	// possibly already garbage-collected from the head-end).
	ErrInstanceGone = errors.New("controller: instance destroyed")
)

// InstanceSpec is the Provider's request for one OddCI instance.
type InstanceSpec struct {
	// Image is the application to stage.
	Image *appimage.Image
	// Target is the requested instance size in nodes.
	Target int
	// Requirements filter eligible devices.
	Requirements instance.Requirements
	// HeartbeatPeriod tunes member reporting (0 = PNA default).
	HeartbeatPeriod time.Duration
	// Lifetime auto-dismantles member DVEs (0 = until reset).
	Lifetime time.Duration
	// InitialProbability overrides the wakeup probability of the first
	// broadcast; 0 lets the Controller derive it from the observed idle
	// population.
	InitialProbability float64
}

// InstanceStatus is the consolidated view passed to the Provider.
type InstanceStatus struct {
	ID       instance.ID
	Target   int
	Busy     int
	Wakeups  int // wakeup broadcasts sent (1 + recompositions)
	Resets   int
	Trimming int // pending reset commands for excess nodes
	// Destroyed is set once the instance is dismantled; its reset
	// envelope stays on air until the retransmission window closes and
	// the instance is garbage-collected (after which Status returns
	// ErrInstanceGone).
	Destroyed bool
}

type instState struct {
	id          instance.ID
	spec        InstanceSpec
	imageFile   string
	imageDigest appimage.Digest
	// imageRaw is the image's serialized bytes, encoded exactly once at
	// Create/recovery. Carousel refreshes re-stage these bytes verbatim
	// (the PR 5 encode-once property applied to the head-end): with
	// content-hashed modules downstream, an unchanged image re-airs as a
	// cache hit, never as a re-encode.
	imageRaw     []byte
	seq          uint32
	wakeups      int
	resets       int
	trimPending  int
	members      map[uint64]time.Time // busy nodes → last heartbeat
	destroyed    bool
	lastWakeup   *control.Wakeup
	resetEnvOpen bool // a reset envelope for this id is on air
	// resetTicks counts the maintenance passes the reset envelope has
	// left on air before the instance is garbage-collected.
	resetTicks int
	// Telemetry state: when the latest wakeup aired, whether a join has
	// been observed since (wakeup→first-join latency), when the instance
	// was created, and whether it has reached its target size yet
	// (time-to-converge).
	wakeupAt        time.Time
	joinSinceWakeup bool
	createdAt       time.Time
	converged       bool
	// adoptUntil, set on recovered live instances, holds off maintenance
	// recompositions until surviving members have had a chance to report
	// in — re-adoption replaces re-waking after a restart.
	adoptUntil time.Time
}

type nodeInfo struct {
	state      control.NodeState
	instanceID instance.ID
	profile    instance.DeviceProfile
	lastSeen   time.Time
	hbPeriod   time.Duration
}

// nodeShardCount fixes the number of node-state shards. Heartbeat
// consolidation locks only one shard plus (for busy nodes) the instance
// table, so sessions on different shards proceed in parallel — the
// first-order answer to the paper's footnote-3 Controller-bottleneck
// question, measured by BenchmarkHandleHeartbeatParallel.
const nodeShardCount = 64

type nodeShard struct {
	mu    sync.Mutex
	nodes map[uint64]*nodeInfo
}

// Controller is the head-end component.
type Controller struct {
	cfg Config

	mu         sync.Mutex
	started    bool
	recovered  bool // state was replayed from a journal store
	aitVersion uint8
	instances  map[instance.ID]*instState
	order      []instance.ID
	nextID     instance.ID
	maint      simtime.Timer
	stopped    bool

	// Carousel-refresh retry state: when a head-end Update fails the
	// pending flag stays set and a backoff timer (plus every
	// maintenance pass) retries until the broadcaster accepts the
	// content again.
	refreshPending  bool
	refreshAttempts int
	refreshTimer    simtime.Timer

	shards    [nodeShardCount]nodeShard
	nodeCount atomic.Int64
	// idleCount tracks the idle subset of nodeCount; heartbeat
	// back-pressure sizes the idle reporting period from it (only idle
	// nodes are re-tuned, so using the total population would land the
	// realized rate below target).
	idleCount atomic.Int64

	// heartbeatsSeen counts processed heartbeats (load accounting).
	heartbeatsSeen atomic.Int64
	// lastHeartbeat is the unix-nano arrival time of the most recent
	// heartbeat (heartbeat-silence health check).
	lastHeartbeat atomic.Int64

	met ctrlMetrics
}

// ctrlMetrics bundles the Controller's pre-created telemetry handles.
// All handles are nil (no-op) when Config.Obs is unset, so the hot path
// pays at most a nil check per metric.
type ctrlMetrics struct {
	heartbeats    *obs.Counter
	wakeups       *obs.Counter
	resetsSent    *obs.Counter
	trims         *obs.Counter
	created       *obs.Counter
	destroyed     *obs.Counter
	gced          *obs.Counter
	refreshRetry  *obs.Counter
	refreshOK     *obs.Counter
	nodesExpired  *obs.Counter
	hbPeriod      *obs.Gauge // back-pressure period handed to idle nodes
	wakeupToJoin  *obs.Histogram
	convergeTime  *obs.Histogram
	refreshDelay  *obs.Gauge // current backoff delay armed (seconds)
	maintainTicks *obs.Counter
	recoveredInst *obs.Counter
	imageEncodes  *obs.Counter
	imageUpdates  *obs.Counter
}

// instrument creates metric handles and registers the gauge functions
// and health checks against reg (a nil reg leaves every handle no-op).
func (c *Controller) instrument(reg *obs.Registry) {
	c.met = ctrlMetrics{
		heartbeats:    reg.Counter("oddci_controller_heartbeats_total", "Heartbeats consolidated"),
		wakeups:       reg.Counter("oddci_controller_wakeups_total", "Wakeup broadcasts sent (initial + recompositions)"),
		resetsSent:    reg.Counter("oddci_controller_resets_total", "Reset commands issued in heartbeat replies"),
		trims:         reg.Counter("oddci_controller_trims_total", "Excess members trimmed"),
		created:       reg.Counter("oddci_controller_instances_created_total", "Instances provisioned"),
		destroyed:     reg.Counter("oddci_controller_instances_destroyed_total", "Instances dismantled"),
		gced:          reg.Counter("oddci_controller_instances_gced_total", "Destroyed instances garbage-collected from the head-end"),
		refreshRetry:  reg.Counter("oddci_controller_refresh_retries_total", "Failed carousel updates awaiting backoff retry"),
		refreshOK:     reg.Counter("oddci_controller_refresh_recoveries_total", "Carousel updates recovered after retries"),
		nodesExpired:  reg.Counter("oddci_controller_nodes_expired_total", "Silent nodes expired by the maintenance loop"),
		hbPeriod:      reg.Gauge("oddci_controller_heartbeat_period_seconds", "Back-pressure reporting period handed to idle nodes"),
		wakeupToJoin:  reg.Histogram("oddci_controller_wakeup_to_join_seconds", "Latency from a wakeup broadcast to the first member join", nil),
		convergeTime:  reg.Histogram("oddci_controller_converge_seconds", "Time from instance creation to first reaching target size", nil),
		refreshDelay:  reg.Gauge("oddci_controller_refresh_backoff_seconds", "Backoff delay armed for the next refresh retry"),
		maintainTicks: reg.Counter("oddci_controller_maintenance_passes_total", "Maintenance loop passes"),
		recoveredInst: reg.Counter("oddci_controller_instances_recovered_total", "Instances recovered from snapshot+journal at startup"),
		imageEncodes:  reg.Counter("oddci_controller_image_encodes_total", "Image serializations performed (once per instance create, flat in refresh count)"),
		imageUpdates:  reg.Counter("oddci_controller_image_updates_total", "Live-instance image replacements (Recompose)"),
	}
	if reg == nil {
		return
	}
	reg.GaugeFunc("oddci_controller_nodes", "Nodes tracked from heartbeat state", func() float64 {
		return float64(c.nodeCount.Load())
	})
	reg.GaugeFunc("oddci_controller_nodes_idle", "Idle subset of tracked nodes", func() float64 {
		return float64(c.idleCount.Load())
	})
	reg.GaugeFunc("oddci_controller_instances_live", "Live (non-destroyed) instances", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, st := range c.instances {
			if !st.destroyed {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("oddci_controller_size_deficit", "Sum over live instances of target minus members", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		deficit := 0
		for _, st := range c.instances {
			if st.destroyed {
				continue
			}
			if d := st.spec.Target - len(st.members); d > 0 {
				deficit += d
			}
		}
		return float64(deficit)
	})
	reg.GaugeFunc("oddci_controller_refresh_attempts", "Consecutive failed carousel refresh attempts", func() float64 {
		_, attempts := c.RefreshPending()
		return float64(attempts)
	})
	reg.RegisterHealth("carousel-refresh", func() error {
		pending, attempts := c.RefreshPending()
		if pending && attempts >= c.cfg.RefreshStuckAfter {
			return fmt.Errorf("refresh stuck in backoff after %d failed attempts", attempts)
		}
		return nil
	})
	reg.RegisterHealth("heartbeat-silence", func() error {
		last := c.lastHeartbeat.Load()
		if last == 0 || c.nodeCount.Load() == 0 {
			return nil // nothing tracked yet: silence is expected
		}
		if silent := c.cfg.Clock.Now().Sub(time.Unix(0, last)); silent > c.cfg.HeartbeatSilence {
			return fmt.Errorf("no heartbeat for %s from %d tracked nodes", silent, c.nodeCount.Load())
		}
		return nil
	})
}

// HeartbeatsSeen reports how many heartbeats the Controller has
// consolidated.
func (c *Controller) HeartbeatsSeen() int64 { return c.heartbeatsSeen.Load() }

func (c *Controller) shard(nodeID uint64) *nodeShard {
	return &c.shards[nodeID%nodeShardCount]
}

// New builds a Controller. With Config.Journal set, it replays the
// store's snapshot+journal and comes up holding the pre-crash instance
// table (Start then re-airs it in one head-end update).
func New(cfg Config) (*Controller, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:       cfg,
		instances: make(map[instance.ID]*instState),
		nextID:    1,
	}
	for i := range c.shards {
		c.shards[i].nodes = make(map[uint64]*nodeInfo)
	}
	c.instrument(cfg.Obs)
	if cfg.Journal != nil {
		if err := c.recover(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// recover replays the journal store into the instance tables. Membership
// is deliberately left empty: surviving members announce themselves on
// their next heartbeat (re-adoption), and Start grants each live
// instance an adoption grace window before maintenance may recompose.
func (c *Controller) recover() error {
	st, err := c.cfg.Journal.Load()
	if err != nil {
		return fmt.Errorf("controller: recover: %w", err)
	}
	if st.NextID > 1 {
		c.nextID = instance.ID(st.NextID)
	}
	if st.Empty() {
		return nil
	}
	c.recovered = true
	for _, id := range st.Order {
		rec := st.Instances[id]
		img, err := appimage.Decode(rec.Image)
		if err != nil {
			return fmt.Errorf("controller: recover instance %d image: %w", id, err)
		}
		digest := appimage.DigestOf(rec.Image)
		is := &instState{
			id:       instance.ID(rec.ID),
			imageRaw: rec.Image,
			spec: InstanceSpec{
				Image:           img,
				Target:          int(rec.Target),
				Requirements:    rec.Requirements,
				HeartbeatPeriod: rec.HeartbeatPeriod,
				Lifetime:        rec.Lifetime,
			},
			imageFile:   rec.ImageFile,
			imageDigest: digest,
			seq:         rec.Seq,
			wakeups:     int(rec.Wakeups),
			resets:      int(rec.Resets),
			destroyed:   rec.Destroyed,
			// Suppress wakeup→join telemetry for re-adopted members: the
			// pre-crash wakeup time is gone, so any latency would be
			// measured against the restart instead.
			joinSinceWakeup: true,
		}
		if rec.Destroyed {
			// Restart the full reset-retransmission window so every
			// grace-windowed PNA gets another chance to observe the reset.
			is.resetEnvOpen = true
			is.resetTicks = c.cfg.ResetRetransmitTicks
		} else {
			is.members = make(map[uint64]time.Time)
			is.lastWakeup = &control.Wakeup{
				InstanceID:      is.id,
				Seq:             rec.Seq,
				Probability:     rec.Probability,
				Requirements:    rec.Requirements,
				ImageFile:       rec.ImageFile,
				ImageDigest:     digest,
				HeartbeatPeriod: rec.HeartbeatPeriod,
				Lifetime:        rec.Lifetime,
			}
		}
		c.instances[is.id] = is
		c.order = append(c.order, is.id)
		c.met.recoveredInst.Inc()
	}
	return nil
}

// Recovered reports whether New replayed durable state.
func (c *Controller) Recovered() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recovered
}

// adoptGraceLocked computes a recovered live instance's re-adoption
// window: surviving members report at their instance period (or the PNA
// default), so after HeartbeatGrace of those periods everyone alive has
// had a chance to be counted.
func (c *Controller) adoptGraceLocked(st *instState, now time.Time) time.Time {
	period := st.spec.HeartbeatPeriod
	if period <= 0 {
		period = time.Minute // the PNA's default reporting period
	}
	return now.Add(time.Duration(c.cfg.HeartbeatGrace) * period)
}

// journalRecordLocked renders st as its full durable record (OpCreate
// and compaction snapshots).
func journalRecordLocked(st *instState) journal.InstanceRecord {
	rec := journal.InstanceRecord{
		ID:              uint64(st.id),
		Seq:             st.seq,
		Wakeups:         uint32(st.wakeups),
		Resets:          uint32(st.resets),
		Destroyed:       st.destroyed,
		ResetTicks:      int32(st.resetTicks),
		Target:          int32(st.spec.Target),
		HeartbeatPeriod: st.spec.HeartbeatPeriod,
		Lifetime:        st.spec.Lifetime,
		Requirements:    st.spec.Requirements,
		ImageFile:       st.imageFile,
	}
	if st.lastWakeup != nil {
		rec.Probability = st.lastWakeup.Probability
	}
	rec.Image = st.imageRaw // encoded once at Create/recovery
	return rec
}

// journalAppendLocked persists one lifecycle mutation. Append errors do
// not fail the control plane — the store latches the error into Err and
// the journal-stalled health check, and the operator decides.
func (c *Controller) journalAppendLocked(r journal.Record) {
	if c.cfg.Journal != nil {
		_ = c.cfg.Journal.Append(r)
	}
}

// durableStateLocked rebuilds the journal State image of the current
// tables (compaction input).
func (c *Controller) durableStateLocked() *journal.State {
	st := journal.NewState()
	st.NextID = uint64(c.nextID)
	for _, is := range c.orderedLocked() {
		rec := journalRecordLocked(is)
		st.Instances[rec.ID] = &rec
		st.Order = append(st.Order, rec.ID)
	}
	return st
}

// Start puts the PNA Xlet and the control file on air, signals
// AUTOSTART, and begins the maintenance loop. On a recovered Controller
// the initial contents already hold the replayed instances — one
// head-end update re-airs everything — and a failed initial staging is
// not fatal: it enters the refresh-retry backoff path, because the
// durable state must come back up even when the head-end is flapping.
func (c *Controller) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return errors.New("controller: already started")
	}
	c.started = true
	if err := c.cfg.Broadcaster.Start(c.carouselFilesLocked()); err != nil {
		if !c.recovered {
			return fmt.Errorf("controller: start carousel: %w", err)
		}
		c.refreshFailedLocked()
	}
	if c.recovered {
		now := c.cfg.Clock.Now()
		for _, st := range c.instances {
			if !st.destroyed {
				st.adoptUntil = c.adoptGraceLocked(st, now)
			}
		}
	}
	if err := c.publishAITLocked(); err != nil {
		return err
	}
	c.scheduleMaintenanceLocked()
	return nil
}

// Stop halts the maintenance and refresh-retry loops (tests and
// experiment teardown).
func (c *Controller) Stop() {
	c.mu.Lock()
	c.stopped = true
	t := c.maint
	c.maint = nil
	rt := c.refreshTimer
	c.refreshTimer = nil
	c.mu.Unlock()
	if t != nil {
		t.Stop()
	}
	if rt != nil {
		rt.Stop()
	}
}

func (c *Controller) scheduleMaintenanceLocked() {
	if c.stopped {
		return
	}
	c.maint = c.cfg.Clock.AfterFunc(c.cfg.MaintenancePeriod, func() {
		c.maintain()
		c.mu.Lock()
		c.scheduleMaintenanceLocked()
		c.mu.Unlock()
	})
}

// carouselFilesLocked assembles the current carousel contents in
// module order: PNA Xlet, control file, then one image per live
// instance. Order matters: a PNA that has just read the control file
// continues straight into the image within the same cycle.
func (c *Controller) carouselFilesLocked() []dsmcc.File {
	files := []dsmcc.File{
		{Name: c.cfg.PNAClassFile, Data: c.cfg.PNAXlet},
		{Name: pnaConfigFile, Data: c.controlFileLocked()},
	}
	for _, st := range c.orderedLocked() {
		if !st.destroyed {
			files = append(files, dsmcc.File{Name: st.imageFile, Data: st.imageRaw})
		}
	}
	return files
}

const pnaConfigFile = "oddci.config"

func (c *Controller) orderedLocked() []*instState {
	out := make([]*instState, 0, len(c.order))
	for _, id := range c.order {
		if st, ok := c.instances[id]; ok {
			out = append(out, st)
		}
	}
	return out
}

// controlFileLocked concatenates the live signed envelopes: the latest
// wakeup per live instance plus resets for recently destroyed ones.
func (c *Controller) controlFileLocked() []byte {
	var out []byte
	for _, st := range c.orderedLocked() {
		if st.destroyed {
			if st.resetEnvOpen {
				raw, err := control.SignReset(&control.Reset{InstanceID: st.id, Seq: st.seq}, c.cfg.Key)
				if err == nil {
					out = append(out, raw...)
				}
			}
			continue
		}
		if st.lastWakeup != nil {
			raw, err := control.SignWakeup(st.lastWakeup, c.cfg.Key)
			if err == nil {
				out = append(out, raw...)
			}
		}
	}
	return out
}

func (c *Controller) publishAITLocked() error {
	c.aitVersion = (c.aitVersion + 1) & 0x1F
	table := &ait.AIT{
		Type:    ait.TypeDVBJ,
		Version: c.aitVersion,
		Applications: []ait.Application{{
			OrgID:       c.cfg.OrgID,
			AppID:       1,
			ControlCode: ait.Autostart,
			Name:        "OddCI-PNA",
			ClassFile:   c.cfg.PNAClassFile,
		}},
	}
	return c.cfg.Signalling.Publish(table)
}

// refreshCarouselLocked pushes the current contents to the broadcaster
// (committed at the next cycle boundary). It is the raw attempt;
// callers that must not strand on-air state behind already-bumped
// sequence numbers go through requestRefreshLocked instead.
func (c *Controller) refreshCarouselLocked() error {
	return c.cfg.Broadcaster.Update(c.carouselFilesLocked())
}

// requestRefreshLocked pushes the current contents to the head-end and,
// on failure, arms the exponential-backoff retry path so the update is
// eventually re-attempted even if no further state change occurs.
func (c *Controller) requestRefreshLocked() {
	if err := c.refreshCarouselLocked(); err != nil {
		c.refreshFailedLocked()
		return
	}
	c.refreshDoneLocked()
}

// refreshDoneLocked records a successful head-end update, clearing any
// pending retry.
func (c *Controller) refreshDoneLocked() {
	if c.refreshPending {
		c.met.refreshOK.Inc()
		c.emitLocked(LifecycleEvent{Kind: LifecycleRefreshRecovered, Attempt: c.refreshAttempts})
	}
	c.refreshPending = false
	c.refreshAttempts = 0
	c.met.refreshDelay.Set(0)
	if c.refreshTimer != nil {
		c.refreshTimer.Stop()
		c.refreshTimer = nil
	}
}

// refreshFailedLocked marks the on-air content stale and schedules a
// retry with exponential backoff (unless one is already armed).
func (c *Controller) refreshFailedLocked() {
	c.refreshPending = true
	c.refreshAttempts++
	c.met.refreshRetry.Inc()
	c.emitLocked(LifecycleEvent{Kind: LifecycleRefreshRetry, Attempt: c.refreshAttempts})
	if c.stopped || c.refreshTimer != nil {
		return
	}
	delay := c.cfg.RefreshRetryBase
	for i := 1; i < c.refreshAttempts && delay < c.cfg.RefreshRetryMax; i++ {
		delay *= 2
	}
	if delay > c.cfg.RefreshRetryMax {
		delay = c.cfg.RefreshRetryMax
	}
	c.met.refreshDelay.Set(delay.Seconds())
	c.refreshTimer = c.cfg.Clock.AfterFunc(delay, c.retryRefresh)
}

// retryRefresh is the backoff timer body.
func (c *Controller) retryRefresh() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refreshTimer = nil
	if c.stopped || !c.refreshPending {
		return
	}
	c.requestRefreshLocked()
}

// RefreshPending reports whether a head-end update is awaiting retry,
// and how many consecutive attempts have failed.
func (c *Controller) RefreshPending() (bool, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.refreshPending, c.refreshAttempts
}

func (c *Controller) emitLocked(ev LifecycleEvent) {
	if c.cfg.OnLifecycle != nil {
		c.cfg.OnLifecycle(ev)
	}
}

// wakeupSpanLocked starts the root span of one wakeup broadcast and
// publishes its context in the collector's link table under
// (instance, seq), where joining PNAs (same process) or the TCP
// coordinator's banner (remote nodes) pick it up. Sampling is decided
// here, at the head of the trace.
func (c *Controller) wakeupSpanLocked(st *instState, prob float64) {
	sp := c.cfg.Spans.Root("wakeup", "controller")
	if sp == nil {
		return
	}
	sp.SetDetail("instance=%d seq=%d p=%.2f", st.id, st.seq, prob)
	c.cfg.Spans.SetLink(span.LinkKey(uint64(st.id), uint64(st.seq)), sp.Context())
	sp.End()
}

// WakeupTraceContext returns the trace context of an instance's most
// recent wakeup broadcast (zero when untraced or unsampled). The TCP
// coordinator stamps it into session banners so remote nodes join the
// same trace the broadcast started.
func (c *Controller) WakeupTraceContext(id instance.ID, seq uint32) span.Context {
	ctx, _ := c.cfg.Spans.GetLink(span.LinkKey(uint64(id), uint64(seq)))
	return ctx
}

// lookupLocked resolves an instance ID, distinguishing IDs the
// Controller never issued (ErrUnknownInstance) from instances already
// garbage-collected after destruction (ErrInstanceGone). A destroyed
// instance still inside its reset-retransmission window resolves
// normally with st.destroyed set.
func (c *Controller) lookupLocked(id instance.ID) (*instState, error) {
	if st, ok := c.instances[id]; ok {
		return st, nil
	}
	if id == 0 || id >= c.nextID {
		return nil, fmt.Errorf("%w %d", ErrUnknownInstance, id)
	}
	return nil, fmt.Errorf("%w: %d garbage-collected", ErrInstanceGone, id)
}

// ContentStats reports the head-end content assembled from current
// state: control-file bytes, carousel file count, and the live /
// destroyed-on-air instance split. Lifecycle tests use it to assert the
// head-end stays bounded under churn.
func (c *Controller) ContentStats() (controlFileBytes, carouselFiles, live, destroyedOnAir int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	files := c.carouselFilesLocked()
	carouselFiles = len(files)
	controlFileBytes = len(files[1].Data)
	for _, st := range c.instances {
		if st.destroyed {
			destroyedOnAir++
		} else {
			live++
		}
	}
	return controlFileBytes, carouselFiles, live, destroyedOnAir
}

// idleEligibleLocked estimates the idle population matching req from
// heartbeat state. Callers hold c.mu; shard locks are taken briefly per
// shard (global → shard ordering is the allowed direction).
func (c *Controller) idleEligibleLocked(req instance.Requirements, now time.Time) int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, ni := range sh.nodes {
			if ni.state != control.StateIdle {
				continue
			}
			if !req.Match(ni.profile) {
				continue
			}
			if c.stale(ni, now) {
				continue
			}
			n++
		}
		sh.mu.Unlock()
	}
	return n
}

// relDiff returns |a-b|/b for positive durations.
func relDiff(a, b time.Duration) float64 {
	d := (a - b).Seconds()
	if d < 0 {
		d = -d
	}
	return d / b.Seconds()
}

// stale reports whether a node has missed its grace window; the caller
// holds the node's shard lock.
func (c *Controller) stale(ni *nodeInfo, now time.Time) bool {
	period := ni.hbPeriod
	if period <= 0 {
		period = time.Minute
	}
	return now.Sub(ni.lastSeen) > time.Duration(c.cfg.HeartbeatGrace)*period
}

// probabilityFor sizes the wakeup probability: target surplus nodes
// from an idle population of size pop.
func (c *Controller) probabilityFor(deficit, pop int) float64 {
	if pop <= 0 {
		return 1
	}
	p := c.cfg.SafetyFactor * float64(deficit) / float64(pop)
	if p > 1 {
		return 1
	}
	return p
}

// CreateInstance provisions a new OddCI instance: the image goes on the
// carousel and a signed wakeup is broadcast.
func (c *Controller) CreateInstance(spec InstanceSpec) (instance.ID, error) {
	if spec.Image == nil {
		return 0, errors.New("controller: instance needs an image")
	}
	if spec.Target <= 0 {
		return 0, errors.New("controller: target size must be positive")
	}
	if spec.InitialProbability < 0 || spec.InitialProbability > 1 {
		return 0, errors.New("controller: initial probability out of [0,1]")
	}
	// Serialize the image exactly once; every carousel refresh and
	// journal record reuses these bytes.
	imageRaw, err := spec.Image.Encode()
	if err != nil {
		return 0, fmt.Errorf("controller: image: %w", err)
	}
	digest := appimage.DigestOf(imageRaw)
	c.met.imageEncodes.Inc()

	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		return 0, errors.New("controller: not started")
	}
	now := c.cfg.Clock.Now()
	id := c.nextID
	c.nextID++
	st := &instState{
		id:          id,
		spec:        spec,
		imageFile:   fmt.Sprintf("image.%d", id),
		imageDigest: digest,
		imageRaw:    imageRaw,
		members:     make(map[uint64]time.Time),
		wakeupAt:    now,
		createdAt:   now,
	}
	prob := spec.InitialProbability
	if prob == 0 {
		prob = c.probabilityFor(spec.Target, c.idleEligibleLocked(spec.Requirements, now))
	}
	st.seq = 1
	st.wakeups = 1
	st.lastWakeup = &control.Wakeup{
		InstanceID:      id,
		Seq:             st.seq,
		Probability:     prob,
		Requirements:    spec.Requirements,
		ImageFile:       st.imageFile,
		ImageDigest:     digest,
		HeartbeatPeriod: spec.HeartbeatPeriod,
		Lifetime:        spec.Lifetime,
	}
	c.instances[id] = st
	c.order = append(c.order, id)
	if err := c.refreshCarouselLocked(); err != nil {
		// Roll back: the head-end rejected the update, so nothing of
		// this instance is on air. A refresh already pending from an
		// earlier failure keeps its retry schedule.
		delete(c.instances, id)
		c.order = c.order[:len(c.order)-1]
		return 0, fmt.Errorf("controller: stage instance %d: %w", id, err)
	}
	c.refreshDoneLocked()
	// Journal after the head-end accepted the staging: a crash in the
	// window between commit and append loses only this instance, which
	// the PNAs' stray-member resets and the GC path reconcile; journaling
	// first would resurrect rolled-back instances instead.
	c.journalAppendLocked(journal.Record{Op: journal.OpCreate, Inst: journalRecordLocked(st)})
	c.met.created.Inc()
	c.met.wakeups.Inc()
	c.emitLocked(LifecycleEvent{Kind: LifecycleCreated, Instance: id, Seq: st.seq})
	c.wakeupSpanLocked(st, prob)
	if c.cfg.OnWakeup != nil {
		c.cfg.OnWakeup(id, st.seq, prob)
	}
	return id, nil
}

// Resize changes an instance's target size. Shrinking trims via
// heartbeat replies; growing is handled by the next maintenance pass.
func (c *Controller) Resize(id instance.ID, target int) error {
	if target < 0 {
		return errors.New("controller: negative target")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st, err := c.lookupLocked(id)
	if err != nil {
		return err
	}
	if st.destroyed {
		return fmt.Errorf("%w: %d", ErrInstanceGone, id)
	}
	st.spec.Target = target
	if excess := len(st.members) - target; excess > 0 {
		st.trimPending = excess
	} else {
		st.trimPending = 0
	}
	c.journalAppendLocked(journal.Record{Op: journal.OpResize, Inst: journal.InstanceRecord{
		ID:     uint64(id),
		Target: int32(target),
	}})
	return nil
}

// Recompose replaces a live instance's application image in place. The
// new image is encoded once, the wakeup envelope re-airs at seq+1 with
// the new digest and probability zero — members ride the carousel (or,
// via Config.OnImageUpdate, the TCP coordinator's delta_img plane) to
// the new content, while idle nodes never roll against the bump — and
// the journal records the replacement so a recovered Controller
// re-enters the carousel with the new image. Like DestroyInstance the
// mutation commits even when the head-end update fails; the refresh
// retries with backoff.
func (c *Controller) Recompose(id instance.ID, img *appimage.Image) error {
	if img == nil {
		return errors.New("controller: recompose needs an image")
	}
	imageRaw, err := img.Encode()
	if err != nil {
		return fmt.Errorf("controller: image: %w", err)
	}
	digest := appimage.DigestOf(imageRaw)
	c.met.imageEncodes.Inc()

	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		return errors.New("controller: not started")
	}
	st, err := c.lookupLocked(id)
	if err != nil {
		return err
	}
	if st.destroyed {
		return fmt.Errorf("%w: %d", ErrInstanceGone, id)
	}
	st.spec.Image = img
	st.imageRaw = imageRaw
	st.imageDigest = digest
	st.seq++
	st.wakeups++
	w := *st.lastWakeup
	w.Seq = st.seq
	w.Probability = 0 // content update, not a recruitment round
	w.ImageDigest = digest
	st.lastWakeup = &w
	c.journalAppendLocked(journal.Record{Op: journal.OpRecompose, Inst: journal.InstanceRecord{
		ID:      uint64(id),
		Seq:     st.seq,
		Wakeups: uint32(st.wakeups),
		Image:   imageRaw,
	}})
	c.met.imageUpdates.Inc()
	c.met.wakeups.Inc()
	c.emitLocked(LifecycleEvent{Kind: LifecycleRecomposed, Instance: id, Seq: st.seq})
	c.wakeupSpanLocked(st, 0)
	c.requestRefreshLocked()
	if c.cfg.OnImageUpdate != nil {
		c.cfg.OnImageUpdate(id, img)
	}
	return nil
}

// DestroyInstance dismantles an instance: a signed reset goes on air
// and the image leaves the carousel. Destruction commits immediately
// even when the head-end update fails — the refresh retries with
// backoff until the broadcaster accepts it. The reset envelope stays on
// air for ResetRetransmitTicks maintenance passes, after which the
// maintenance loop garbage-collects the instance entirely.
func (c *Controller) DestroyInstance(id instance.ID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, err := c.lookupLocked(id)
	if err != nil {
		return err
	}
	if st.destroyed {
		return fmt.Errorf("%w: %d", ErrInstanceGone, id)
	}
	st.destroyed = true
	st.resetEnvOpen = true
	st.resetTicks = c.cfg.ResetRetransmitTicks
	st.seq++
	st.resets++
	st.trimPending = 0
	st.members = nil // the frozen membership view is stale from here on
	c.journalAppendLocked(journal.Record{Op: journal.OpDestroy, Inst: journal.InstanceRecord{
		ID:         uint64(id),
		Seq:        st.seq,
		Resets:     uint32(st.resets),
		ResetTicks: int32(st.resetTicks),
	}})
	c.met.destroyed.Inc()
	c.emitLocked(LifecycleEvent{Kind: LifecycleDestroyed, Instance: id, Seq: st.seq})
	if sp := c.cfg.Spans.Root("instance-destroy", "controller"); sp != nil {
		sp.SetDetail("instance=%d seq=%d", id, st.seq)
		sp.End()
	}
	c.requestRefreshLocked()
	return nil
}

// Status reports the consolidated instance view. A destroyed instance
// still inside its reset-retransmission window reports Destroyed with
// zeroed membership counters; a garbage-collected one returns
// ErrInstanceGone, and an ID that never existed ErrUnknownInstance.
func (c *Controller) Status(id instance.ID) (InstanceStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, err := c.lookupLocked(id)
	if err != nil {
		return InstanceStatus{}, err
	}
	if st.destroyed {
		return InstanceStatus{
			ID:        id,
			Wakeups:   st.wakeups,
			Resets:    st.resets,
			Destroyed: true,
		}, nil
	}
	return InstanceStatus{
		ID:       id,
		Target:   st.spec.Target,
		Busy:     len(st.members),
		Wakeups:  st.wakeups,
		Resets:   st.resets,
		Trimming: st.trimPending,
	}, nil
}

// Population reports (alive idle, alive busy) node counts from
// heartbeat state.
func (c *Controller) Population() (idle, busy int) {
	now := c.cfg.Clock.Now()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, ni := range sh.nodes {
			if c.stale(ni, now) {
				continue
			}
			if ni.state == control.StateBusy {
				busy++
			} else {
				idle++
			}
		}
		sh.mu.Unlock()
	}
	return idle, busy
}

// maintain is the periodic control loop: expire silent nodes, recompose
// deficient instances, keep trim counters consistent, and run down the
// reset-retransmission windows of destroyed instances, garbage-
// collecting them from the head-end once every grace-windowed PNA has
// had its chance to observe the reset.
func (c *Controller) maintain() {
	c.mu.Lock()
	c.met.maintainTicks.Inc()
	now := c.cfg.Clock.Now()
	// Expire silent nodes shard by shard.
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for id, ni := range sh.nodes {
			if c.stale(ni, now) {
				if st, ok := c.instances[ni.instanceID]; ok {
					delete(st.members, id)
				}
				if ni.state == control.StateIdle {
					c.idleCount.Add(-1)
				}
				delete(sh.nodes, id)
				c.nodeCount.Add(-1)
				c.met.nodesExpired.Inc()
			}
		}
		sh.mu.Unlock()
	}
	refresh := false
	for _, st := range c.instances {
		if st.destroyed {
			// Count down the reset-retransmission window.
			st.resetTicks--
			continue
		}
		// Drop members whose heartbeats stopped.
		for nid := range st.members {
			sh := c.shard(nid)
			sh.mu.Lock()
			ni := sh.nodes[nid]
			gone := ni == nil || c.stale(ni, now) || ni.instanceID != st.id
			sh.mu.Unlock()
			if gone {
				delete(st.members, nid)
			}
		}
		deficit := st.spec.Target - len(st.members)
		if deficit <= 0 {
			if !st.converged {
				st.converged = true
				c.met.convergeTime.ObserveDuration(now.Sub(st.createdAt))
			}
			// A recovered instance that reconverged no longer needs its
			// adoption grace.
			st.adoptUntil = time.Time{}
		}
		if deficit < 0 {
			// Probabilistic sizing overshot: trim the excess through
			// heartbeat replies.
			st.trimPending = -deficit
		}
		if deficit > 0 && st.trimPending == 0 && !now.Before(st.adoptUntil) {
			pop := c.idleEligibleLocked(st.spec.Requirements, now)
			if pop > 0 {
				st.seq++
				st.wakeups++
				w := *st.lastWakeup
				w.Seq = st.seq
				w.Probability = c.probabilityFor(deficit, pop)
				st.lastWakeup = &w
				st.wakeupAt = now
				st.joinSinceWakeup = false
				refresh = true
				c.journalAppendLocked(journal.Record{Op: journal.OpRecompose, Inst: journal.InstanceRecord{
					ID:          uint64(st.id),
					Seq:         st.seq,
					Wakeups:     uint32(st.wakeups),
					Probability: w.Probability,
				}})
				c.met.wakeups.Inc()
				c.emitLocked(LifecycleEvent{Kind: LifecycleRecomposed, Instance: st.id, Seq: st.seq})
				c.wakeupSpanLocked(st, w.Probability)
				if c.cfg.OnWakeup != nil {
					c.cfg.OnWakeup(st.id, st.seq, w.Probability)
				}
			}
		}
	}
	// Garbage-collect destroyed instances whose retransmission window
	// has closed: the reset envelope leaves the control file and the
	// instState leaves the tables, so the head-end stays bounded under
	// sustained create/destroy churn.
	var gced []instance.ID
	for id, st := range c.instances {
		if st.destroyed && st.resetTicks <= 0 {
			gced = append(gced, id)
		}
	}
	for _, id := range gced {
		delete(c.instances, id)
		for i, oid := range c.order {
			if oid == id {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
		refresh = true
		c.journalAppendLocked(journal.Record{Op: journal.OpGC, Inst: journal.InstanceRecord{ID: uint64(id)}})
		c.met.gced.Inc()
		c.emitLocked(LifecycleEvent{Kind: LifecycleGCed, Instance: id})
	}
	if refresh || c.refreshPending {
		c.requestRefreshLocked()
	}
	// Compact once the journal outgrows its threshold: snapshot the
	// current tables and reset the journal, bounding both replay time
	// and disk growth under sustained churn.
	if c.cfg.Journal != nil && c.cfg.Journal.NeedsCompaction() {
		_ = c.cfg.Journal.Compact(c.durableStateLocked())
	}
	c.mu.Unlock()
}

// ServeNode runs the heartbeat session for one node's direct channel.
// The system wiring spawns one per device.
func (c *Controller) ServeNode(ep *netsim.Endpoint) {
	for {
		pkt, err := ep.Recv()
		if err != nil {
			return
		}
		raw, ok := pkt.Payload.([]byte)
		if !ok {
			continue
		}
		hb, err := control.DecodeHeartbeat(raw)
		if err != nil {
			continue
		}
		reply := c.HandleHeartbeat(hb)
		ep.Send(pkt.From, control.EncodeHeartbeatReply(reply), control.HeartbeatReplyWireSize)
	}
}

// HandleHeartbeat consolidates one report and decides the reply. It is
// the hot path behind ServeNode, exported for load benchmarks. Idle
// heartbeats (the bulk at scale) touch only the node's shard; busy ones
// additionally take the instance table. Shard locks are never held
// while acquiring c.mu.
func (c *Controller) HandleHeartbeat(hb *control.Heartbeat) *control.HeartbeatReply {
	c.heartbeatsSeen.Add(1)
	c.met.heartbeats.Inc()
	now := c.cfg.Clock.Now()
	// Track the last-heartbeat time at one-second granularity: the
	// silence health check tolerates minutes, and the atomic load keeps
	// the common case a read-shared cache line instead of a contended
	// store per heartbeat.
	if nano := now.UnixNano(); nano-c.lastHeartbeat.Load() > int64(time.Second) {
		c.lastHeartbeat.Store(nano)
	}
	sh := c.shard(hb.NodeID)

	sh.mu.Lock()
	ni := sh.nodes[hb.NodeID]
	if ni == nil {
		ni = &nodeInfo{}
		sh.nodes[hb.NodeID] = ni
		c.nodeCount.Add(1)
		if hb.State == control.StateIdle {
			c.idleCount.Add(1)
		}
	} else if ni.state != hb.State {
		switch {
		case hb.State == control.StateIdle:
			c.idleCount.Add(1)
		case ni.state == control.StateIdle:
			c.idleCount.Add(-1)
		}
	}
	oldInstance := ni.instanceID
	ni.state = hb.State
	ni.instanceID = hb.InstanceID
	ni.profile = hb.Profile
	ni.lastSeen = now

	reply := &control.HeartbeatReply{Command: control.CmdNone}
	if hb.State == control.StateIdle && c.cfg.TargetHeartbeatRate > 0 {
		// Back-pressure: spread the *idle* population's reports over
		// the target rate. Busy nodes keep their instance's period and
		// are not re-tuned, so sizing from the total population would
		// leave the realized idle rate below target.
		desired := time.Duration(float64(c.idleCount.Load()) / c.cfg.TargetHeartbeatRate * float64(time.Second))
		if desired < c.cfg.MinHeartbeatPeriod {
			desired = c.cfg.MinHeartbeatPeriod
		}
		if desired > c.cfg.MaxHeartbeatPeriod {
			desired = c.cfg.MaxHeartbeatPeriod
		}
		cur := ni.hbPeriod
		if cur <= 0 || relDiff(cur, desired) > 0.2 {
			reply.Period = desired
			ni.hbPeriod = desired
			c.met.hbPeriod.Set(desired.Seconds())
		}
	}
	sh.mu.Unlock()

	if oldInstance == hb.InstanceID && hb.State != control.StateBusy {
		return reply // pure idle refresh: no instance bookkeeping
	}

	c.mu.Lock()
	// Membership bookkeeping on instance changes.
	if oldInstance != hb.InstanceID {
		if old, ok := c.instances[oldInstance]; ok {
			delete(old.members, hb.NodeID)
		}
	}
	var trimmed bool
	var instancePeriod time.Duration
	if hb.State == control.StateBusy {
		st, ok := c.instances[hb.InstanceID]
		switch {
		case !ok || st.destroyed:
			// Stray member of a dismantled instance: reset it.
			reply.Command = control.CmdReset
			c.met.resetsSent.Inc()
			if ok {
				st.resets++
			}
		case st.trimPending > 0:
			st.trimPending--
			st.resets++
			delete(st.members, hb.NodeID)
			trimmed = true
			reply.Command = control.CmdReset
			c.met.resetsSent.Inc()
			c.met.trims.Inc()
			c.emitLocked(LifecycleEvent{Kind: LifecycleTrimmed, Instance: st.id, Node: hb.NodeID, Seq: st.seq})
			// Trim spans parent under the wakeup that overshot, so the
			// overshoot is visible in the broadcast's own trace.
			parent, _ := c.cfg.Spans.GetLink(span.LinkKey(uint64(st.id), uint64(st.seq)))
			if sp := c.cfg.Spans.Start(parent, "trim", "controller"); sp != nil {
				sp.SetDetail("node=%d", hb.NodeID)
				sp.End()
			}
		default:
			if _, member := st.members[hb.NodeID]; !member && !st.joinSinceWakeup {
				st.joinSinceWakeup = true
				c.met.wakeupToJoin.ObserveDuration(now.Sub(st.wakeupAt))
			}
			st.members[hb.NodeID] = now
		}
		if ok && st.spec.HeartbeatPeriod > 0 {
			instancePeriod = st.spec.HeartbeatPeriod
		}
	}
	c.mu.Unlock()

	if trimmed || instancePeriod > 0 {
		sh.mu.Lock()
		if cur := sh.nodes[hb.NodeID]; cur != nil {
			if trimmed {
				if cur.state != control.StateIdle {
					c.idleCount.Add(1)
				}
				cur.state = control.StateIdle
				cur.instanceID = 0
			}
			if instancePeriod > 0 {
				cur.hbPeriod = instancePeriod
			}
		}
		sh.mu.Unlock()
	}
	return reply
}

// DumpState renders the durable control-plane state as deterministic
// text: carousel order, fixed field order, no map iteration anywhere.
// Two controllers that replayed the same snapshot+journal produce
// byte-identical dumps — the recovery determinism contract.
func (c *Controller) DumpState() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b []byte
	b = fmt.Appendf(b, "nextID=%d instances=%d\n", c.nextID, len(c.instances))
	for _, st := range c.orderedLocked() {
		prob := 0.0
		if st.lastWakeup != nil {
			prob = st.lastWakeup.Probability
		}
		b = fmt.Appendf(b, "instance %d seq=%d wakeups=%d resets=%d target=%d destroyed=%t resetTicks=%d prob=%.9f file=%s digest=%x req=%+v hb=%s life=%s\n",
			st.id, st.seq, st.wakeups, st.resets, st.spec.Target, st.destroyed,
			st.resetTicks, prob, st.imageFile, st.imageDigest,
			st.spec.Requirements, st.spec.HeartbeatPeriod, st.spec.Lifetime)
	}
	return string(b)
}
