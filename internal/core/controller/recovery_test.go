package controller

import (
	"errors"
	"strings"
	"testing"
	"time"

	"oddci/internal/core/instance"
	"oddci/internal/journal"
	"oddci/internal/obs"
)

func openRecoveryStore(t *testing.T, dir string, opts journal.Options) *journal.Store {
	t.Helper()
	opts.NoSync = true
	s, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// journaledRig is newRig plus a journal store over dir, so a later rig
// on the same dir models a controller restart from durable state.
func journaledRig(t *testing.T, dir string, reg *obs.Registry, opts journal.Options) (*rig, *journal.Store) {
	t.Helper()
	st := openRecoveryStore(t, dir, opts)
	r := newRigWith(t, nil, func(cfg *Config) {
		cfg.Journal = st
		cfg.Obs = reg
	})
	return r, st
}

// TestRecoveredStatusDistinction is the PR's small-fix regression: a
// restarted controller must keep reporting ErrInstanceGone for IDs it
// issued and garbage-collected before the crash, and ErrUnknownInstance
// only for IDs it never issued.
func TestRecoveredStatusDistinction(t *testing.T) {
	dir := t.TempDir()
	r1, s1 := journaledRig(t, dir, nil, journal.Options{})

	idA, err := r1.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 1, InitialProbability: 1})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := r1.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 1, InitialProbability: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.ctrl.DestroyInstance(idA); err != nil {
		t.Fatal(err)
	}
	// Run the reset-retransmission window down so idA is GC'd pre-crash.
	r1.advance(4 * 30 * time.Second)
	if _, err := r1.ctrl.Status(idA); !errors.Is(err, ErrInstanceGone) {
		t.Fatalf("pre-crash Status(gc'd) = %v, want ErrInstanceGone", err)
	}
	r1.ctrl.Stop()
	s1.Close()

	r2, _ := journaledRig(t, dir, nil, journal.Options{})
	if !r2.ctrl.Recovered() {
		t.Fatal("controller on a populated state dir should report Recovered")
	}
	if _, err := r2.ctrl.Status(idA); !errors.Is(err, ErrInstanceGone) {
		t.Fatalf("recovered Status(gc'd) = %v, want ErrInstanceGone", err)
	}
	if st, err := r2.ctrl.Status(idB); err != nil || st.Target != 1 {
		t.Fatalf("recovered Status(live) = %+v, %v", st, err)
	}
	if _, err := r2.ctrl.Status(instance.ID(999)); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("recovered Status(never issued) = %v, want ErrUnknownInstance", err)
	}
	// The ID high-water mark survives: new instances never reuse idB+1.
	idC, err := r2.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 1, InitialProbability: 1})
	if err != nil {
		t.Fatal(err)
	}
	if idC != idB+1 {
		t.Fatalf("post-restart create issued ID %d, want %d", idC, idB+1)
	}
	r2.ctrl.Stop()
	r2.clk.Wait()
}

// TestDeterministicRecovery replays the same snapshot+journal into two
// independent controllers and requires byte-identical durable state
// dumps and byte-identical /varz renderings.
func TestDeterministicRecovery(t *testing.T) {
	dir := t.TempDir()
	r1, s1 := journaledRig(t, dir, nil, journal.Options{})
	idA, err := r1.ctrl.CreateInstance(InstanceSpec{
		Image: testImage(t), Target: 3, InitialProbability: 0.5,
		HeartbeatPeriod: 45 * time.Second, Lifetime: time.Hour,
		Requirements: instance.Requirements{Class: instance.ClassSTB, MinMemMB: 128, MinCPUScore: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 2, InitialProbability: 1}); err != nil {
		t.Fatal(err)
	}
	r1.heartbeatBusy(1, idA)
	r1.heartbeatBusy(2, idA)
	if err := r1.ctrl.Resize(idA, 5); err != nil {
		t.Fatal(err)
	}
	idC, err := r1.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 1, InitialProbability: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.ctrl.DestroyInstance(idC); err != nil {
		t.Fatal(err)
	}
	r1.advance(65 * time.Second)
	r1.ctrl.Stop()
	s1.Close()

	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	rA, _ := journaledRig(t, dir, regA, journal.Options{})
	rB, _ := journaledRig(t, dir, regB, journal.Options{})
	dumpA, dumpB := rA.ctrl.DumpState(), rB.ctrl.DumpState()
	if dumpA != dumpB {
		t.Fatalf("replayed state dumps differ:\n--- A ---\n%s--- B ---\n%s", dumpA, dumpB)
	}
	if !strings.Contains(dumpA, "instance") {
		t.Fatalf("replayed dump is empty:\n%s", dumpA)
	}
	if jsonA, jsonB := regA.RenderJSON(), regB.RenderJSON(); jsonA != jsonB {
		t.Fatalf("replayed /varz renderings differ:\n--- A ---\n%s--- B ---\n%s", jsonA, jsonB)
	}
	rA.ctrl.Stop()
	rB.ctrl.Stop()
}

// TestRecoveredAdoptionGrace: a restarted controller must re-adopt
// surviving members from their heartbeats instead of re-waking the
// instance — maintenance may not recompose while the adoption grace
// window is open, even with a deficit and idle candidates on hand.
func TestRecoveredAdoptionGrace(t *testing.T) {
	dir := t.TempDir()
	r1, s1 := journaledRig(t, dir, nil, journal.Options{})
	id, err := r1.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 2, InitialProbability: 1})
	if err != nil {
		t.Fatal(err)
	}
	r1.heartbeatBusy(1, id)
	r1.heartbeatBusy(2, id)
	st, err := r1.ctrl.Status(id)
	if err != nil || st.Busy != 2 || st.Wakeups != 1 {
		t.Fatalf("pre-crash status = %+v, %v", st, err)
	}
	s1.Close() // hard stop: r1 is simply abandoned

	r2, _ := journaledRig(t, dir, nil, journal.Options{})
	// Node 1 survived the controller crash and re-adopts; node 2 is
	// gone. Node 7 idles — recompose bait if the grace window leaks.
	r2.heartbeatBusy(1, id)
	r2.heartbeatIdle(7)
	// Default grace: HeartbeatGrace(3) × the PNA's 1-minute reporting
	// period. Maintenance runs every 30s; none of the passes inside the
	// window may re-wake despite deficit 1 and an eligible idle node.
	for now := 30 * time.Second; now <= 150*time.Second; now += 30 * time.Second {
		r2.advance(30 * time.Second)
		r2.heartbeatBusy(1, id)
		r2.heartbeatIdle(7)
		st, err := r2.ctrl.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Wakeups != 1 {
			t.Fatalf("recompose during adoption grace at t=%s: wakeups=%d", now, st.Wakeups)
		}
		if st.Busy != 1 {
			t.Fatalf("re-adopted membership at t=%s = %d, want 1", now, st.Busy)
		}
	}
	// Past the window the deficit is real: the next maintenance pass
	// (t=180s, exactly the grace boundary) recomposes.
	r2.advance(30 * time.Second)
	st, err = r2.ctrl.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Wakeups != 2 {
		t.Fatalf("post-grace wakeups = %d, want 2 (one recompose)", st.Wakeups)
	}
	r2.ctrl.Stop()
	r2.clk.Wait()
}

// TestRecoveryFromCompactedSnapshot restarts from a state dir whose
// journal was folded into a snapshot, and requires the recovered live
// state to match the pre-crash dump byte for byte.
func TestRecoveryFromCompactedSnapshot(t *testing.T) {
	dir := t.TempDir()
	// CompactEvery=1 arms compaction immediately; the next maintenance
	// pass folds the journal into the snapshot.
	r1, s1 := journaledRig(t, dir, nil, journal.Options{CompactEvery: 1})
	if _, err := r1.ctrl.CreateInstance(InstanceSpec{
		Image: testImage(t), Target: 4, InitialProbability: 0.25,
		HeartbeatPeriod: 20 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	r1.advance(35 * time.Second)
	if s1.NeedsCompaction() {
		t.Fatal("maintenance should have compacted the journal")
	}
	want := r1.ctrl.DumpState()
	s1.Close()

	r2, _ := journaledRig(t, dir, nil, journal.Options{})
	if !r2.ctrl.Recovered() {
		t.Fatal("snapshot-only state dir should recover")
	}
	if got := r2.ctrl.DumpState(); got != want {
		t.Fatalf("snapshot recovery diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	r2.ctrl.Stop()
	r2.clk.Wait()
}
