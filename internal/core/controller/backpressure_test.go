package controller

import (
	"crypto/ed25519"
	"math/rand"
	"testing"
	"time"

	"oddci/internal/control"
	"oddci/internal/core/instance"
	"oddci/internal/dsmcc"
	"oddci/internal/middleware"
	"oddci/internal/simtime"
)

func newBackpressureRig(t *testing.T, rate float64) *rig {
	t.Helper()
	clk := simtime.NewSim(epoch)
	car, err := dsmcc.NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	bcast, err := dsmcc.NewBroadcaster(clk, car, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	sig := middleware.NewSignalling(clk, 0)
	rng := rand.New(rand.NewSource(1))
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(Config{
		Clock: clk, Broadcaster: bcast, Signalling: sig,
		Key: priv, Rng: rng,
		TargetHeartbeatRate: rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Start(); err != nil {
		t.Fatal(err)
	}
	return &rig{clk: clk, ctrl: ctrl, pub: pub, sig: sig, bcast: bcast}
}

func TestBackpressureTunesIdlePeriod(t *testing.T) {
	r := newBackpressureRig(t, 10) // want ≤10 heartbeats/s
	// 3000 idle nodes: desired period = 300 s.
	var lastPeriod time.Duration
	for i := uint64(1); i <= 3000; i++ {
		reply := r.ctrl.HandleHeartbeat(&control.Heartbeat{
			NodeID: i, State: control.StateIdle,
			Profile: stbProfile(), SentAt: r.clk.Now(),
		})
		if reply.Period > 0 {
			lastPeriod = reply.Period
		}
	}
	want := 300 * time.Second
	if relDiff(lastPeriod, want) > 0.25 {
		t.Fatalf("instructed period %v, want ≈%v", lastPeriod, want)
	}
	// Node 1 was tuned when the population looked tiny; its next report
	// gets the corrected period, and the one after that is settled.
	beat := func() *control.HeartbeatReply {
		return r.ctrl.HandleHeartbeat(&control.Heartbeat{
			NodeID: 1, State: control.StateIdle,
			Profile: stbProfile(), SentAt: r.clk.Now(),
		})
	}
	if reply := beat(); relDiff(reply.Period, want) > 0.25 {
		t.Fatalf("correction = %v, want ≈%v", reply.Period, want)
	}
	if reply := beat(); reply.Period != 0 {
		t.Fatalf("re-instructed a settled node: %v", reply.Period)
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

func TestBackpressureClamps(t *testing.T) {
	r := newBackpressureRig(t, 1000) // tiny population, huge budget
	reply := r.ctrl.HandleHeartbeat(&control.Heartbeat{
		NodeID: 1, State: control.StateIdle,
		Profile: stbProfile(), SentAt: r.clk.Now(),
	})
	if reply.Period != 10*time.Second { // MinHeartbeatPeriod default
		t.Fatalf("period = %v, want clamp at 10s", reply.Period)
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

func TestBackpressureDisabledByDefault(t *testing.T) {
	r := newRig(t)
	reply := r.ctrl.HandleHeartbeat(&control.Heartbeat{
		NodeID: 1, State: control.StateIdle,
		Profile: stbProfile(), SentAt: r.clk.Now(),
	})
	if reply.Period != 0 {
		t.Fatalf("unexpected period instruction %v", reply.Period)
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

func TestBackpressureLeavesBusyNodesAlone(t *testing.T) {
	r := newBackpressureRig(t, 10)
	id, err := r.ctrl.CreateInstance(InstanceSpec{
		Image: testImage(t), Target: 1, InitialProbability: 1,
		HeartbeatPeriod: 7 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	reply := r.ctrl.HandleHeartbeat(&control.Heartbeat{
		NodeID: 1, State: control.StateBusy, InstanceID: id,
		Profile: stbProfile(), SentAt: r.clk.Now(),
	})
	if reply.Period != 0 {
		t.Fatalf("busy node re-tuned to %v", reply.Period)
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

// The heartbeat budget is spent by the nodes that actually obey the
// tuning — the idle ones. A mostly-busy population must not inflate
// the instructed idle period (the old derivation used total node
// count: 1000 nodes at 2/s gave 500 s where 100 idle nodes want 50 s).
func TestBackpressureDerivesFromIdlePopulation(t *testing.T) {
	r := newBackpressureRig(t, 2)
	id, err := r.ctrl.CreateInstance(InstanceSpec{
		Image: testImage(t), Target: 900, InitialProbability: 1,
		HeartbeatPeriod: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 900; i++ {
		r.heartbeatBusy(i, id)
	}
	for i := uint64(901); i <= 1000; i++ {
		r.heartbeatIdle(i)
	}
	reply := r.ctrl.HandleHeartbeat(&control.Heartbeat{
		NodeID: 901, State: control.StateIdle,
		Profile: stbProfile(), SentAt: r.clk.Now(),
	})
	want := 50 * time.Second // 100 idle nodes / 2 per second
	if relDiff(reply.Period, want) > 0.25 {
		t.Fatalf("instructed idle period %v, want ≈%v (idle population only)", reply.Period, want)
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

// End-of-loop sanity: a PNA receiving the instruction applies it (the
// PNA side is covered in pna tests; this pins the protocol field).
func TestBackpressureFieldSurvivesCodec(t *testing.T) {
	reply := &control.HeartbeatReply{Period: 300 * time.Second}
	got, err := control.DecodeHeartbeatReply(control.EncodeHeartbeatReply(reply))
	if err != nil || got.Period != 300*time.Second {
		t.Fatalf("period round trip: %v %v", got, err)
	}
	_ = instance.AnyClass
}
