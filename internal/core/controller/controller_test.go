package controller

import (
	"crypto/ed25519"
	"math/rand"
	"sync"
	"testing"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/control"
	"oddci/internal/core/instance"
	"oddci/internal/dsmcc"
	"oddci/internal/middleware"
	"oddci/internal/simtime"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

type rig struct {
	clk   *simtime.Sim
	ctrl  *Controller
	pub   ed25519.PublicKey
	sig   *middleware.Signalling
	bcast *dsmcc.Broadcaster
	car   *dsmcc.Carousel
}

func newRig(t *testing.T) *rig {
	return newRigWith(t, nil, nil)
}

// newRigWith builds a rig whose Controller head-end is optionally
// wrapped (fault injection) and whose Config is optionally tweaked
// before construction.
func newRigWith(t *testing.T, wrap func(HeadEnd) HeadEnd, tweak func(*Config)) *rig {
	t.Helper()
	clk := simtime.NewSim(epoch)
	car, err := dsmcc.NewCarousel(0x300, 0)
	if err != nil {
		t.Fatal(err)
	}
	bcast, err := dsmcc.NewBroadcaster(clk, car, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	sig := middleware.NewSignalling(clk, 0)
	rng := rand.New(rand.NewSource(1))
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	head := HeadEnd(bcast)
	if wrap != nil {
		head = wrap(head)
	}
	cfg := Config{
		Clock: clk, Broadcaster: head, Signalling: sig,
		Key: priv, Rng: rng,
		MaintenancePeriod: 30 * time.Second,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Start(); err != nil {
		t.Fatal(err)
	}
	return &rig{clk: clk, ctrl: ctrl, pub: pub, sig: sig, bcast: bcast, car: car}
}

// advance drives the event loop a bounded amount of virtual time
// (bare Wait would run the self-rearming maintenance loop forever).
func (r *rig) advance(d time.Duration) {
	r.clk.RunUntil(r.clk.Now().Add(d))
}

func testImage(t *testing.T) *appimage.Image {
	t.Helper()
	return &appimage.Image{Name: "app", EntryPoint: "e", Payload: make([]byte, 1000)}
}

func stbProfile() instance.DeviceProfile {
	return instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100}
}

func (r *rig) heartbeatIdle(nodeID uint64) {
	r.ctrl.HandleHeartbeat(&control.Heartbeat{
		NodeID: nodeID, State: control.StateIdle,
		Profile: stbProfile(), SentAt: r.clk.Now(),
	})
}

func (r *rig) heartbeatBusy(nodeID uint64, inst instance.ID) *control.HeartbeatReply {
	return r.ctrl.HandleHeartbeat(&control.Heartbeat{
		NodeID: nodeID, State: control.StateBusy, InstanceID: inst,
		Profile: stbProfile(), SentAt: r.clk.Now(),
	})
}

func TestCreateInstanceValidation(t *testing.T) {
	r := newRig(t)
	if _, err := r.ctrl.CreateInstance(InstanceSpec{Target: 5}); err == nil {
		t.Fatal("missing image accepted")
	}
	if _, err := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t)}); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 1, InitialProbability: 2}); err == nil {
		t.Fatal("probability 2 accepted")
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

func TestCreatePutsSignedWakeupOnAir(t *testing.T) {
	r := newRig(t)
	id, err := r.ctrl.CreateInstance(InstanceSpec{
		Image: testImage(t), Target: 10, InitialProbability: 0.5,
		HeartbeatPeriod: 45 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.advance(5 * time.Second) // commit the carousel update
	raw := r.currentControlFile(t)
	msgs, err := control.OpenAll(raw, r.pub)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("envelopes = %d", len(msgs))
	}
	w, ok := msgs[0].(*control.Wakeup)
	if !ok {
		t.Fatalf("message %T", msgs[0])
	}
	if w.InstanceID != id || w.Probability != 0.5 || w.Seq != 1 ||
		w.HeartbeatPeriod != 45*time.Second {
		t.Fatalf("wakeup %+v", w)
	}
	// The image digest binds to the actual carousel file.
	img := r.currentFile(t, w.ImageFile)
	if _, err := appimage.Verify(img, w.ImageDigest); err != nil {
		t.Fatalf("carousel image does not verify: %v", err)
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

// currentControlFile reads the control file from the broadcaster's
// carousel (after commit).
func (r *rig) currentControlFile(t *testing.T) []byte { return r.currentFile(t, "oddci.config") }

func (r *rig) currentFile(t *testing.T, name string) []byte {
	t.Helper()
	var data []byte
	var derr error
	r.bcast.RequestFile(name, dsmcc.BlockCache, func(d []byte, _ time.Time, err error) {
		data, derr = d, err
	})
	r.advance(10 * time.Second)
	if derr != nil {
		t.Fatalf("read %s: %v", name, derr)
	}
	return data
}

func TestAutoProbabilityFromIdlePopulation(t *testing.T) {
	r := newRig(t)
	for i := uint64(1); i <= 100; i++ {
		r.heartbeatIdle(i)
	}
	if _, err := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 20}); err != nil {
		t.Fatal(err)
	}
	r.advance(5 * time.Second)
	msgs, err := control.OpenAll(r.currentControlFile(t), r.pub)
	if err != nil {
		t.Fatal(err)
	}
	w := msgs[0].(*control.Wakeup)
	// p = safety × 20/100 = 1.2 × 0.2 = 0.24.
	if w.Probability < 0.23 || w.Probability > 0.25 {
		t.Fatalf("auto probability = %v, want ≈0.24", w.Probability)
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

func TestHeartbeatMembershipAndStatus(t *testing.T) {
	r := newRig(t)
	id, _ := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 3, InitialProbability: 1})
	for i := uint64(1); i <= 3; i++ {
		if reply := r.heartbeatBusy(i, id); reply.Command != control.CmdNone {
			t.Fatalf("node %d got %v", i, reply.Command)
		}
	}
	st, err := r.ctrl.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Busy != 3 || st.Target != 3 {
		t.Fatalf("status %+v", st)
	}
	idle, busy := r.ctrl.Population()
	if idle != 0 || busy != 3 {
		t.Fatalf("population = %d/%d", idle, busy)
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

func TestStrayBusyNodeGetsReset(t *testing.T) {
	r := newRig(t)
	if reply := r.heartbeatBusy(9, 12345); reply.Command != control.CmdReset {
		t.Fatalf("stray member reply = %v, want reset", reply.Command)
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

func TestResizeTrimsViaHeartbeatReplies(t *testing.T) {
	r := newRig(t)
	id, _ := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 5, InitialProbability: 1})
	for i := uint64(1); i <= 5; i++ {
		r.heartbeatBusy(i, id)
	}
	if err := r.ctrl.Resize(id, 2); err != nil {
		t.Fatal(err)
	}
	resets := 0
	for i := uint64(1); i <= 5; i++ {
		if r.heartbeatBusy(i, id).Command == control.CmdReset {
			resets++
		}
	}
	if resets != 3 {
		t.Fatalf("resets = %d, want 3", resets)
	}
	st, _ := r.ctrl.Status(id)
	if st.Busy != 2 || st.Trimming != 0 {
		t.Fatalf("after trim: %+v", st)
	}
	if err := r.ctrl.Resize(id, -1); err == nil {
		t.Fatal("negative resize accepted")
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

func TestDestroyPutsResetOnAirAndRemovesImage(t *testing.T) {
	r := newRig(t)
	id, _ := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 2, InitialProbability: 1})
	r.advance(5 * time.Second)
	if err := r.ctrl.DestroyInstance(id); err != nil {
		t.Fatal(err)
	}
	r.advance(5 * time.Second)
	msgs, err := control.OpenAll(r.currentControlFile(t), r.pub)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("envelopes = %d", len(msgs))
	}
	if _, ok := msgs[0].(*control.Reset); !ok {
		t.Fatalf("message %T, want reset", msgs[0])
	}
	// Busy members of the destroyed instance are reset via replies too.
	if reply := r.heartbeatBusy(1, id); reply.Command != control.CmdReset {
		t.Fatal("member of destroyed instance not reset")
	}
	if err := r.ctrl.DestroyInstance(id); err == nil {
		t.Fatal("double destroy accepted")
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

func TestMaintenanceRebroadcastsOnDeficit(t *testing.T) {
	r := newRig(t)
	// 10 idle nodes known; instance wants 5 but nobody joined.
	var done bool
	r.clk.Go(func() {
		for i := uint64(1); i <= 10; i++ {
			r.heartbeatIdle(i)
		}
		id, err := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 5, InitialProbability: 0.01})
		if err != nil {
			t.Error(err)
			return
		}
		// Idle nodes keep heartbeating so they stay in the idle view.
		for round := 0; round < 4; round++ {
			r.clk.Sleep(35 * time.Second)
			for i := uint64(1); i <= 10; i++ {
				r.heartbeatIdle(i)
			}
		}
		st, err := r.ctrl.Status(id)
		if err != nil {
			t.Error(err)
			return
		}
		if st.Wakeups < 2 {
			t.Errorf("wakeups = %d, want rebroadcasts", st.Wakeups)
		}
		done = true
		r.ctrl.Stop()
	})
	r.clk.Wait()
	if !done {
		t.Fatal("scenario did not finish")
	}
}

func TestStaleNodesExpire(t *testing.T) {
	r := newRig(t)
	id, _ := r.ctrl.CreateInstance(InstanceSpec{
		Image: testImage(t), Target: 2, InitialProbability: 1,
		HeartbeatPeriod: 30 * time.Second,
	})
	var busyAfter int
	r.clk.Go(func() {
		r.heartbeatBusy(1, id)
		r.heartbeatBusy(2, id)
		// Node 2 goes silent; node 1 keeps reporting.
		for i := 0; i < 8; i++ {
			r.clk.Sleep(30 * time.Second)
			r.heartbeatBusy(1, id)
		}
		st, err := r.ctrl.Status(id)
		if err != nil {
			t.Error(err)
			return
		}
		busyAfter = st.Busy
		r.ctrl.Stop()
	})
	r.clk.Wait()
	if busyAfter != 1 {
		t.Fatalf("busy = %d after silence, want 1 (node 2 expired)", busyAfter)
	}
}

func TestStatusUnknownInstance(t *testing.T) {
	r := newRig(t)
	if _, err := r.ctrl.Status(99); err == nil {
		t.Fatal("unknown instance accepted")
	}
	if err := r.ctrl.Resize(99, 1); err == nil {
		t.Fatal("resize of unknown instance accepted")
	}
	if err := r.ctrl.DestroyInstance(99); err == nil {
		t.Fatal("destroy of unknown instance accepted")
	}
	r.ctrl.Stop()
	r.clk.Wait()
}

// Concurrent heartbeats from many sessions while instances churn: the
// shard/global locking protocol must hold under the race detector.
func TestConcurrentHeartbeatsRaceStress(t *testing.T) {
	r := newRig(t)
	id, err := r.ctrl.CreateInstance(InstanceSpec{Image: testImage(t), Target: 8, InitialProbability: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				nodeID := uint64(g*1000 + i%50 + 1)
				state := control.StateIdle
				inst := instance.ID(0)
				if i%3 == 0 {
					state = control.StateBusy
					inst = id
				}
				r.ctrl.HandleHeartbeat(&control.Heartbeat{
					NodeID: nodeID, State: state, InstanceID: inst,
					Profile: stbProfile(), SentAt: r.clk.Now(),
				})
			}
		}()
	}
	// Concurrent control-plane churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.ctrl.Resize(id, 4+i%8)
			r.ctrl.Population()
			r.ctrl.Status(id)
		}
	}()
	wg.Wait()
	if r.ctrl.HeartbeatsSeen() != 8*500 {
		t.Fatalf("heartbeats seen = %d", r.ctrl.HeartbeatsSeen())
	}
	r.ctrl.Stop()
	r.clk.Wait()
}
