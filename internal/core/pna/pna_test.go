package pna

import (
	"crypto/ed25519"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/control"
	"oddci/internal/core/dve"
	"oddci/internal/core/instance"
	"oddci/internal/netsim"
	"oddci/internal/simtime"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

// fakeCtx is a scripted xlet.Context: a mutable in-memory carousel with
// a fixed delivery delay.
type fakeCtx struct {
	clk       *simtime.Sim
	mu        sync.Mutex
	files     map[string][]byte
	delay     time.Duration
	listeners map[int]func()
	nextID    int
	destroyed bool
}

func newFakeCtx(clk *simtime.Sim) *fakeCtx {
	return &fakeCtx{
		clk:       clk,
		files:     make(map[string][]byte),
		delay:     time.Second,
		listeners: make(map[int]func()),
	}
}

func (c *fakeCtx) Clock() simtime.Clock { return c.clk }
func (c *fakeCtx) AppKey() uint64       { return 1 }
func (c *fakeCtx) Go(fn func())         { c.clk.Go(fn) }
func (c *fakeCtx) After(d time.Duration, fn func()) simtime.Timer {
	return c.clk.AfterFunc(d, fn)
}
func (c *fakeCtx) NotifyDestroyed() { c.destroyed = true }

func (c *fakeCtx) ReadFile(name string, fn func([]byte, error)) {
	c.clk.AfterFunc(c.delay, func() {
		c.mu.Lock()
		data, ok := c.files[name]
		c.mu.Unlock()
		if !ok {
			fn(nil, errors.New("no such file"))
			return
		}
		fn(append([]byte(nil), data...), nil)
	})
}

func (c *fakeCtx) OnCarouselUpdate(fn func()) func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	c.listeners[id] = fn
	return func() {
		c.mu.Lock()
		delete(c.listeners, id)
		c.mu.Unlock()
	}
}

// setFiles replaces carousel content and fires generation listeners.
func (c *fakeCtx) setFiles(files map[string][]byte) {
	c.mu.Lock()
	c.files = files
	ls := make([]func(), 0, len(c.listeners))
	for _, fn := range c.listeners {
		ls = append(ls, fn)
	}
	c.mu.Unlock()
	for _, fn := range ls {
		fn()
	}
}

// heartbeatServer records heartbeats and replies per script.
type heartbeatServer struct {
	mu           sync.Mutex
	beats        []*control.Heartbeat
	command      control.Command
	retunePeriod time.Duration
}

func (h *heartbeatServer) serve(ep *netsim.Endpoint) {
	for {
		pkt, err := ep.Recv()
		if err != nil {
			return
		}
		raw, ok := pkt.Payload.([]byte)
		if !ok {
			continue
		}
		hb, err := control.DecodeHeartbeat(raw)
		if err != nil {
			continue
		}
		h.mu.Lock()
		h.beats = append(h.beats, hb)
		cmd := h.command
		h.command = control.CmdNone // one-shot commands
		period := h.retunePeriod
		h.mu.Unlock()
		ep.Send(pkt.From, control.EncodeHeartbeatReply(&control.HeartbeatReply{Command: cmd, Period: period}),
			control.HeartbeatReplyWireSize)
	}
}

func (h *heartbeatServer) states() []control.NodeState {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]control.NodeState, len(h.beats))
	for i, b := range h.beats {
		out[i] = b.State
	}
	return out
}

type rig struct {
	clk   *simtime.Sim
	ctx   *fakeCtx
	pub   ed25519.PublicKey
	priv  ed25519.PrivateKey
	hbSrv *heartbeatServer
	reg   *dve.Registry
	agent *PNA

	appRuns  int
	appRunMu sync.Mutex
}

func newRig(t *testing.T, mutate func(*Config)) *rig {
	t.Helper()
	clk := simtime.NewSim(epoch)
	r := &rig{clk: clk, ctx: newFakeCtx(clk), hbSrv: &heartbeatServer{}, reg: dve.NewRegistry()}
	var err error
	r.pub, r.priv, err = ed25519.GenerateKey(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	r.reg.Register("testapp", func(env *dve.Env) error {
		r.appRunMu.Lock()
		r.appRuns++
		r.appRunMu.Unlock()
		for env.Sleep(time.Minute) {
		}
		return nil
	})
	cfg := Config{
		NodeID:           7,
		Profile:          instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100},
		ControllerKey:    r.pub,
		Registry:         r.reg,
		Rng:              rand.New(rand.NewSource(2)),
		DefaultHeartbeat: 10 * time.Second,
		HeartbeatTimeout: 5 * time.Second,
		DialController: func() (*netsim.Endpoint, func()) {
			cfgL := netsim.LinkConfig{RateBps: 150e3}
			client, srv := netsim.NewDuplex(clk, "node", "controller", cfgL, cfgL)
			clk.Go(func() { r.hbSrv.serve(srv) })
			return client, func() { client.Close(); srv.Close() }
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	factory, err := NewFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.agent = factory().(*PNA)
	if err := r.agent.InitXlet(r.ctx); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *rig) image(t *testing.T) (*appimage.Image, []byte, appimage.Digest) {
	t.Helper()
	img := &appimage.Image{Name: "app", EntryPoint: "testapp", Payload: make([]byte, 1000)}
	raw, err := img.Encode()
	if err != nil {
		t.Fatal(err)
	}
	d, err := img.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return img, raw, d
}

func (r *rig) wakeupConfig(t *testing.T, w *control.Wakeup) []byte {
	t.Helper()
	raw, err := control.SignWakeup(w, r.priv)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func (r *rig) baseWakeup(d appimage.Digest) *control.Wakeup {
	return &control.Wakeup{
		InstanceID:  1,
		Seq:         1,
		Probability: 1,
		ImageFile:   "image.1",
		ImageDigest: d,
	}
}

func TestWakeupJoinsAndHeartbeatsBusy(t *testing.T) {
	r := newRig(t, nil)
	_, imgRaw, digest := r.image(t)
	r.ctx.setFiles(map[string][]byte{
		DefaultConfigFile: r.wakeupConfig(t, r.baseWakeup(digest)),
		"image.1":         imgRaw,
	})
	if err := r.agent.StartXlet(); err != nil {
		t.Fatal(err)
	}
	r.clk.AfterFunc(2*time.Minute, func() { r.agent.DestroyXlet(true) })
	r.clk.Wait()

	if r.appRuns != 1 {
		t.Fatalf("app ran %d times", r.appRuns)
	}
	states := r.hbSrv.states()
	if len(states) == 0 {
		t.Fatal("no heartbeats")
	}
	busy := 0
	for _, s := range states {
		if s == control.StateBusy {
			busy++
		}
	}
	if busy == 0 {
		t.Fatal("no busy heartbeats after join")
	}
}

func TestWrongSignatureRejected(t *testing.T) {
	r := newRig(t, nil)
	_, imgRaw, digest := r.image(t)
	_, rogueKey, _ := ed25519.GenerateKey(rand.New(rand.NewSource(666)))
	rogue, err := control.SignWakeup(r.baseWakeup(digest), rogueKey)
	if err != nil {
		t.Fatal(err)
	}
	r.ctx.setFiles(map[string][]byte{DefaultConfigFile: rogue, "image.1": imgRaw})
	r.agent.StartXlet()
	r.clk.AfterFunc(time.Minute, func() { r.agent.DestroyXlet(true) })
	r.clk.Wait()
	if r.appRuns != 0 {
		t.Fatal("rogue wakeup executed")
	}
	if r.agent.Rejections == 0 {
		t.Fatal("rejection not recorded")
	}
	if st, _ := r.agent.State(); st != control.StateIdle {
		t.Fatalf("state = %v", st)
	}
}

func TestImageDigestMismatchAborts(t *testing.T) {
	r := newRig(t, nil)
	_, imgRaw, digest := r.image(t)
	tampered := append([]byte(nil), imgRaw...)
	tampered[len(tampered)-1] ^= 1
	r.ctx.setFiles(map[string][]byte{
		DefaultConfigFile: r.wakeupConfig(t, r.baseWakeup(digest)),
		"image.1":         tampered,
	})
	r.agent.StartXlet()
	r.clk.AfterFunc(time.Minute, func() { r.agent.DestroyXlet(true) })
	r.clk.Wait()
	if r.appRuns != 0 {
		t.Fatal("tampered image executed")
	}
	if st, _ := r.agent.State(); st != control.StateIdle {
		t.Fatalf("state = %v after aborted join", st)
	}
}

func TestProbabilityZeroNeverJoins(t *testing.T) {
	r := newRig(t, nil)
	_, imgRaw, digest := r.image(t)
	w := r.baseWakeup(digest)
	w.Probability = 0
	r.ctx.setFiles(map[string][]byte{
		DefaultConfigFile: r.wakeupConfig(t, w),
		"image.1":         imgRaw,
	})
	r.agent.StartXlet()
	r.clk.AfterFunc(time.Minute, func() { r.agent.DestroyXlet(true) })
	r.clk.Wait()
	if r.appRuns != 0 {
		t.Fatal("joined despite probability 0")
	}
	if r.agent.Drops != 1 {
		t.Fatalf("drops = %d", r.agent.Drops)
	}
}

func TestRequirementsMismatchIgnored(t *testing.T) {
	r := newRig(t, nil)
	_, imgRaw, digest := r.image(t)
	w := r.baseWakeup(digest)
	w.Requirements = instance.Requirements{Class: instance.ClassConsole}
	r.ctx.setFiles(map[string][]byte{
		DefaultConfigFile: r.wakeupConfig(t, w),
		"image.1":         imgRaw,
	})
	r.agent.StartXlet()
	r.clk.AfterFunc(time.Minute, func() { r.agent.DestroyXlet(true) })
	r.clk.Wait()
	if r.appRuns != 0 {
		t.Fatal("non-compliant PNA joined")
	}
}

func TestRetransmissionDeduplicated(t *testing.T) {
	r := newRig(t, nil)
	_, imgRaw, digest := r.image(t)
	files := map[string][]byte{
		DefaultConfigFile: r.wakeupConfig(t, r.baseWakeup(digest)),
		"image.1":         imgRaw,
	}
	r.ctx.setFiles(files)
	r.agent.StartXlet()
	// Re-air the identical generation several times.
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * 30 * time.Second
		r.clk.AfterFunc(d, func() { r.ctx.setFiles(files) })
	}
	r.clk.AfterFunc(5*time.Minute, func() { r.agent.DestroyXlet(true) })
	r.clk.Wait()
	if r.appRuns != 1 {
		t.Fatalf("app ran %d times; seq dedup failed", r.appRuns)
	}
}

func TestBusyDropsWakeups(t *testing.T) {
	r := newRig(t, nil)
	_, imgRaw, digest := r.image(t)
	r.ctx.setFiles(map[string][]byte{
		DefaultConfigFile: r.wakeupConfig(t, r.baseWakeup(digest)),
		"image.1":         imgRaw,
	})
	r.agent.StartXlet()
	// A second instance's wakeup while busy on the first.
	r.clk.AfterFunc(time.Minute, func() {
		w2 := r.baseWakeup(digest)
		w2.InstanceID = 2
		w2.ImageFile = "image.1"
		r.ctx.setFiles(map[string][]byte{
			DefaultConfigFile: r.wakeupConfig(t, w2),
			"image.1":         imgRaw,
		})
	})
	r.clk.AfterFunc(3*time.Minute, func() { r.agent.DestroyXlet(true) })
	r.clk.Wait()
	if r.appRuns != 1 {
		t.Fatalf("app ran %d times; busy PNA must drop wakeups", r.appRuns)
	}
}

func TestHeartbeatResetCommand(t *testing.T) {
	r := newRig(t, nil)
	_, imgRaw, digest := r.image(t)
	r.ctx.setFiles(map[string][]byte{
		DefaultConfigFile: r.wakeupConfig(t, r.baseWakeup(digest)),
		"image.1":         imgRaw,
	})
	r.agent.StartXlet()
	// After a minute, script one CmdReset reply.
	r.clk.AfterFunc(time.Minute, func() {
		r.hbSrv.mu.Lock()
		r.hbSrv.command = control.CmdReset
		r.hbSrv.mu.Unlock()
	})
	var state control.NodeState
	var inst instance.ID
	r.clk.AfterFunc(3*time.Minute, func() {
		state, inst = r.agent.State()
		r.agent.DestroyXlet(true)
	})
	r.clk.Wait()
	if state != control.StateIdle || inst != 0 {
		t.Fatalf("state=%v inst=%d after reset command", state, inst)
	}
}

func TestBroadcastResetReturnsToIdle(t *testing.T) {
	r := newRig(t, nil)
	_, imgRaw, digest := r.image(t)
	r.ctx.setFiles(map[string][]byte{
		DefaultConfigFile: r.wakeupConfig(t, r.baseWakeup(digest)),
		"image.1":         imgRaw,
	})
	r.agent.StartXlet()
	r.clk.AfterFunc(time.Minute, func() {
		reset, err := control.SignReset(&control.Reset{InstanceID: 1, Seq: 2}, r.priv)
		if err != nil {
			t.Error(err)
			return
		}
		r.ctx.setFiles(map[string][]byte{DefaultConfigFile: reset})
	})
	var state control.NodeState
	r.clk.AfterFunc(2*time.Minute, func() {
		state, _ = r.agent.State()
		r.agent.DestroyXlet(true)
	})
	r.clk.Wait()
	if state != control.StateIdle {
		t.Fatalf("state = %v after broadcast reset", state)
	}
}

func TestLifetimeAutoReset(t *testing.T) {
	r := newRig(t, nil)
	_, imgRaw, digest := r.image(t)
	w := r.baseWakeup(digest)
	w.Lifetime = 2 * time.Minute
	r.ctx.setFiles(map[string][]byte{
		DefaultConfigFile: r.wakeupConfig(t, w),
		"image.1":         imgRaw,
	})
	r.agent.StartXlet()
	var state control.NodeState
	r.clk.AfterFunc(5*time.Minute, func() {
		state, _ = r.agent.State()
		r.agent.DestroyXlet(true)
	})
	r.clk.Wait()
	if state != control.StateIdle {
		t.Fatalf("state = %v after lifetime expiry", state)
	}
}

func TestConditionalDestroyRefusedWhileBusy(t *testing.T) {
	r := newRig(t, nil)
	_, imgRaw, digest := r.image(t)
	r.ctx.setFiles(map[string][]byte{
		DefaultConfigFile: r.wakeupConfig(t, r.baseWakeup(digest)),
		"image.1":         imgRaw,
	})
	r.agent.StartXlet()
	r.clk.AfterFunc(time.Minute, func() {
		if err := r.agent.DestroyXlet(false); err == nil {
			t.Error("busy PNA accepted conditional destroy")
		}
		if err := r.agent.DestroyXlet(true); err != nil {
			t.Errorf("unconditional destroy failed: %v", err)
		}
	})
	r.clk.Wait()
}

func TestFactoryValidation(t *testing.T) {
	if _, err := NewFactory(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestTaskCounterAndPause(t *testing.T) {
	r := newRig(t, nil)
	// An app that reports three tasks then stays resident.
	r.reg.Register("counter", func(env *dve.Env) error {
		for i := 0; i < 3; i++ {
			env.Execute(1)
			env.NoteTaskDone()
		}
		for env.Sleep(time.Minute) {
		}
		return nil
	})
	img := &appimage.Image{Name: "c", EntryPoint: "counter", Payload: []byte{1}}
	raw, err := img.Encode()
	if err != nil {
		t.Fatal(err)
	}
	digest, _ := img.Digest()
	r.ctx.setFiles(map[string][]byte{
		DefaultConfigFile: r.wakeupConfig(t, r.baseWakeup(digest)),
		"image.1":         raw,
	})
	r.agent.StartXlet()
	r.agent.PauseXlet() // heartbeating continues; no state change
	var tasks uint32
	r.clk.AfterFunc(2*time.Minute, func() {
		tasks = r.agent.TasksDone()
		r.agent.DestroyXlet(true)
	})
	r.clk.Wait()
	if tasks != 3 {
		t.Fatalf("tasks done = %d", tasks)
	}
}

func TestUnknownEntryPointAborts(t *testing.T) {
	r := newRig(t, nil)
	img := &appimage.Image{Name: "x", EntryPoint: "not-registered", Payload: []byte{1}}
	raw, _ := img.Encode()
	digest, _ := img.Digest()
	r.ctx.setFiles(map[string][]byte{
		DefaultConfigFile: r.wakeupConfig(t, r.baseWakeup(digest)),
		"image.1":         raw,
	})
	r.agent.StartXlet()
	var state control.NodeState
	r.clk.AfterFunc(time.Minute, func() {
		state, _ = r.agent.State()
		r.agent.DestroyXlet(true)
	})
	r.clk.Wait()
	if state != control.StateIdle {
		t.Fatalf("state = %v after unresolvable image", state)
	}
	if r.agent.Rejections == 0 {
		t.Fatal("unresolvable entry point not counted")
	}
}

func TestHeartbeatPeriodRetuneApplied(t *testing.T) {
	r := newRig(t, func(cfg *Config) { cfg.DefaultHeartbeat = 30 * time.Second })
	// Server instructs a 5-second period on every reply.
	r.hbSrv.mu.Lock()
	r.hbSrv.retunePeriod = 5 * time.Second
	r.hbSrv.mu.Unlock()
	r.ctx.setFiles(map[string][]byte{}) // no wakeup: idle heartbeats only
	r.agent.StartXlet()
	r.clk.AfterFunc(5*time.Minute, func() { r.agent.DestroyXlet(true) })
	r.clk.Wait()
	// 5 minutes at ~5 s period (after the first 30 s interval and
	// jitter) yields far more beats than the default 30 s would (≤10).
	if got := len(r.hbSrv.states()); got < 30 {
		t.Fatalf("heartbeats = %d; period retune not applied", got)
	}
}
