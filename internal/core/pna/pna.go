// Package pna implements the Processing Node Agent: the OddCI component
// resident on every device reachable by the broadcast network. It is
// written as an Xlet (the OddCI-DTV realization of §4.3): AUTOSTART
// launches it on every tuned receiver, after which it listens to the
// carousel for signed control messages, reports its state over the
// direct channel through periodic heartbeats, and runs application
// images inside disposable virtual environments.
//
// Behaviour per §3.2:
//   - only messages signed by the associated Controller are accepted;
//   - busy PNAs drop wakeup messages;
//   - idle PNAs handle a wakeup with the probability it carries;
//   - a compliant idle PNA fetches the image, verifies its digest,
//     creates a DVE and switches to busy;
//   - reset messages (broadcast, or piggybacked on heartbeat replies)
//     destroy the DVE and switch the PNA back to idle.
package pna

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/control"
	"oddci/internal/core/dve"
	"oddci/internal/core/instance"
	"oddci/internal/netsim"
	"oddci/internal/obs"
	"oddci/internal/simtime"
	"oddci/internal/span"
	"oddci/internal/xlet"
)

// DefaultConfigFile is the carousel file carrying control messages.
const DefaultConfigFile = "oddci.config"

// Dialer opens a direct channel, returning the local endpoint and a
// hangup function.
type Dialer func() (*netsim.Endpoint, func())

// Config parameterizes a PNA.
type Config struct {
	NodeID  uint64
	Profile instance.DeviceProfile
	// ControllerKey authenticates broadcast control messages.
	ControllerKey ed25519.PublicKey
	// DialController and DialBackend open the two direct channels.
	DialController Dialer
	DialBackend    Dialer
	// Registry resolves image entry points.
	Registry *dve.Registry
	// TaskDuration is the device performance model (nil = identity).
	TaskDuration func(refSTBSeconds float64) time.Duration
	// Rng drives the probability gate and heartbeat jitter. Required.
	Rng *rand.Rand
	// DefaultHeartbeat applies before any wakeup tunes the period.
	DefaultHeartbeat time.Duration
	// HeartbeatTimeout bounds the reply wait.
	HeartbeatTimeout time.Duration
	// ConfigFile overrides DefaultConfigFile.
	ConfigFile string
	// OnStateChange observes idle/busy transitions (experiment hooks).
	OnStateChange func(nodeID uint64, st control.NodeState, inst instance.ID)
	// Obs, if set, receives fleet-wide agent telemetry (oddci_pna_*
	// metrics: join/drop/rejection counters, image-load and DVE-start
	// latency histograms). Agents from one factory share the handles.
	Obs *obs.Registry
	// Spans, if set, records join/image-load/dve-start spans. The
	// wakeup root context is resolved from the collector's link table
	// (keyed by instance ID and wakeup sequence, published by the
	// Controller), so the signed control codec never changes shape.
	Spans *span.Collector
}

func (c *Config) fill() error {
	if c.Rng == nil {
		return errors.New("pna: rng is required")
	}
	if c.DialController == nil {
		return errors.New("pna: controller dialer is required")
	}
	if c.Registry == nil {
		return errors.New("pna: registry is required")
	}
	if len(c.ControllerKey) == 0 {
		return errors.New("pna: controller key is required")
	}
	if c.DefaultHeartbeat <= 0 {
		c.DefaultHeartbeat = time.Minute
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 10 * time.Second
	}
	if c.ConfigFile == "" {
		c.ConfigFile = DefaultConfigFile
	}
	return nil
}

// NewFactory returns an Xlet factory producing PNA instances, ready to
// register with a receiver's middleware under the PNA class file name.
// Each instance gets its own rand stream derived from cfg.Rng, so an
// agent outliving a power cycle never races its successor.
func NewFactory(cfg Config) (xlet.Factory, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	met := newPNAMetrics(cfg.Obs)
	var mu sync.Mutex
	seeds := cfg.Rng
	return func() xlet.Xlet {
		mu.Lock()
		seed := seeds.Int63()
		mu.Unlock()
		c := cfg
		c.Rng = rand.New(rand.NewSource(seed))
		return &PNA{cfg: c, met: met}
	}, nil
}

// pnaMetrics bundles the fleet-wide agent telemetry handles (all nil
// and no-op when Config.Obs is unset).
type pnaMetrics struct {
	joins      *obs.Counter
	drops      *obs.Counter
	rejections *obs.Counter
	resets     *obs.Counter
	aborts     *obs.Counter
	imageLoad  *obs.Histogram
	dveStart   *obs.Histogram
}

func newPNAMetrics(reg *obs.Registry) pnaMetrics {
	return pnaMetrics{
		joins:      reg.Counter("oddci_pna_joins_total", "Wakeups committed (agent went busy)"),
		drops:      reg.Counter("oddci_pna_wakeups_dropped_total", "Wakeups discarded by the probability gate"),
		rejections: reg.Counter("oddci_pna_rejections_total", "Signature or digest verification failures"),
		resets:     reg.Counter("oddci_pna_resets_total", "Instances reset (broadcast, reply command, or lifetime)"),
		aborts:     reg.Counter("oddci_pna_join_aborts_total", "Joins abandoned before the DVE launched"),
		imageLoad:  reg.Histogram("oddci_pna_image_load_seconds", "Carousel image fetch latency", nil),
		dveStart:   reg.Histogram("oddci_pna_dve_start_seconds", "Wakeup commitment to DVE running", nil),
	}
}

// PNA is one agent instance. Its lifetime is one middleware launch; a
// power cycle produces a fresh instance.
type PNA struct {
	cfg Config
	met pnaMetrics
	ctx xlet.Context

	mu             sync.Mutex
	rngMu          sync.Mutex // cfg.Rng: heartbeat jitter races the probability gate under the wall clock
	state          control.NodeState
	instID         instance.ID
	d              *dve.DVE
	seenSeq        map[instance.ID]uint32
	hbPeriod       time.Duration
	hbInterrupt    simtime.Interrupter
	ctrl           *netsim.Endpoint
	ctrlHangup     func()
	cancelCarousel func()
	lifetimeTimer  simtime.Timer
	tasksDone      uint32
	destroyed      bool
	started        bool
	joinStartedAt  time.Time // wakeup commitment time (DVE-start latency)
	joinSpan       *span.Span

	// Drops counts wakeups discarded by the probability gate;
	// Rejections counts signature/digest failures. Experiment hooks.
	Drops      int
	Rejections int
}

// State returns the agent's current state and instance.
func (p *PNA) State() (control.NodeState, instance.ID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state, p.instID
}

// TasksDone returns the completed-task counter.
func (p *PNA) TasksDone() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tasksDone
}

// InitXlet implements xlet.Xlet.
func (p *PNA) InitXlet(ctx xlet.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ctx = ctx
	p.seenSeq = make(map[instance.ID]uint32)
	p.hbPeriod = p.cfg.DefaultHeartbeat
	return nil
}

// StartXlet implements xlet.Xlet: dial the Controller, watch the
// carousel, start heartbeating, and process any control message already
// on air.
func (p *PNA) StartXlet() error {
	p.mu.Lock()
	if p.ctx == nil {
		p.mu.Unlock()
		return errors.New("pna: not initialized")
	}
	if p.started {
		p.mu.Unlock()
		return nil
	}
	p.started = true
	ep, hangup := p.cfg.DialController()
	p.ctrl = ep
	p.ctrlHangup = hangup
	ctx := p.ctx
	p.mu.Unlock()

	p.mu.Lock()
	p.cancelCarousel = ctx.OnCarouselUpdate(p.checkConfig)
	p.mu.Unlock()
	ctx.Go(p.heartbeatLoop)
	p.checkConfig()
	return nil
}

// PauseXlet implements xlet.Xlet. The PNA keeps heartbeating while
// paused (the receiver is still powered); pausing only matters for
// foreground applications.
func (p *PNA) PauseXlet() {}

// DestroyXlet implements xlet.Xlet.
func (p *PNA) DestroyXlet(unconditional bool) error {
	p.mu.Lock()
	if !unconditional && p.state == control.StateBusy {
		p.mu.Unlock()
		return errors.New("pna: busy executing an instance")
	}
	if p.destroyed {
		p.mu.Unlock()
		return nil
	}
	p.destroyed = true
	cancelCarousel := p.cancelCarousel
	d := p.d
	p.d = nil
	ctrl := p.ctrl
	hangup := p.ctrlHangup
	lt := p.lifetimeTimer
	p.mu.Unlock()

	if cancelCarousel != nil {
		cancelCarousel()
	}
	if lt != nil {
		lt.Stop()
	}
	p.hbInterrupt.Cancel()
	if d != nil {
		d.Destroy()
	}
	if ctrl != nil {
		ctrl.Close()
	}
	if hangup != nil {
		hangup()
	}
	return nil
}

// checkConfig fetches and processes the control file currently on the
// carousel.
func (p *PNA) checkConfig() {
	p.mu.Lock()
	ctx := p.ctx
	destroyed := p.destroyed
	p.mu.Unlock()
	if destroyed || ctx == nil {
		return
	}
	ctx.ReadFile(p.cfg.ConfigFile, func(data []byte, err error) {
		if err != nil {
			return // no control message on air
		}
		msgs, err := control.OpenAll(data, p.cfg.ControllerKey)
		if err != nil {
			p.mu.Lock()
			p.Rejections++
			p.mu.Unlock()
			p.met.rejections.Inc()
			return
		}
		for _, msg := range msgs {
			switch m := msg.(type) {
			case *control.Wakeup:
				p.handleWakeup(m)
			case *control.Reset:
				p.handleReset(m)
			}
		}
	})
}

// handleWakeup applies §3.2's wakeup rules.
func (p *PNA) handleWakeup(w *control.Wakeup) {
	p.mu.Lock()
	if p.destroyed {
		p.mu.Unlock()
		return
	}
	if last, ok := p.seenSeq[w.InstanceID]; ok && w.Seq <= last {
		p.mu.Unlock()
		return // retransmission already evaluated
	}
	p.seenSeq[w.InstanceID] = w.Seq
	if p.state == control.StateBusy {
		p.mu.Unlock()
		return // busy PNAs drop wakeups
	}
	if !w.Requirements.Match(p.cfg.Profile) {
		p.mu.Unlock()
		return
	}
	p.rngMu.Lock()
	draw := p.cfg.Rng.Float64()
	p.rngMu.Unlock()
	if draw >= w.Probability {
		p.Drops++
		p.mu.Unlock()
		p.met.drops.Inc()
		return
	}
	// Committed: become busy immediately so concurrent wakeups are
	// dropped while the image downloads.
	p.state = control.StateBusy
	p.instID = w.InstanceID
	if w.HeartbeatPeriod > 0 {
		p.hbPeriod = w.HeartbeatPeriod
	}
	ctx := p.ctx
	clk := ctx.Clock()
	start := clk.Now()
	p.joinStartedAt = start
	hook := p.cfg.OnStateChange
	p.mu.Unlock()
	p.met.joins.Inc()

	// Resolve the wakeup broadcast's root span via the link table and
	// open the join span under it. A miss (old controller, evicted
	// link, sampled-out trace) degrades to untraced — never an error.
	rootCtx, _ := p.cfg.Spans.GetLink(span.LinkKey(uint64(w.InstanceID), uint64(w.Seq)))
	joinSp := p.cfg.Spans.Start(rootCtx, "join", p.nodeName())
	if joinSp != nil {
		joinSp.SetDetail("instance=%d seq=%d", w.InstanceID, w.Seq)
		p.mu.Lock()
		p.joinSpan = joinSp
		p.mu.Unlock()
	}
	if hook != nil {
		hook(p.cfg.NodeID, control.StateBusy, w.InstanceID)
	}

	imgSp := p.cfg.Spans.Start(joinSp.Context(), "image-load", p.nodeName())
	ctx.ReadFile(w.ImageFile, func(data []byte, err error) {
		if err != nil {
			imgSp.SetError()
			imgSp.End()
			p.abortJoin(w.InstanceID, fmt.Errorf("image fetch: %w", err))
			return
		}
		loadDur := clk.Now().Sub(start)
		if imgSp != nil {
			imgSp.SetDetail("bytes=%d file=%s", len(data), w.ImageFile)
			imgSp.End()
			p.met.imageLoad.ObserveWithExemplar(loadDur.Seconds(), joinSp.Context().Trace.String())
		} else {
			p.met.imageLoad.ObserveDuration(loadDur)
		}
		img, err := appimage.Verify(data, w.ImageDigest)
		if err != nil {
			p.mu.Lock()
			p.Rejections++
			p.mu.Unlock()
			p.met.rejections.Inc()
			p.abortJoin(w.InstanceID, err)
			return
		}
		p.launchDVE(w, img)
	})
}

func (p *PNA) nodeName() string { return fmt.Sprintf("node-%d", p.cfg.NodeID) }

// takeJoinSpan detaches the open join span (if any) for ending.
func (p *PNA) takeJoinSpan() *span.Span {
	p.mu.Lock()
	sp := p.joinSpan
	p.joinSpan = nil
	p.mu.Unlock()
	return sp
}

// abortJoin reverts a failed join to idle.
func (p *PNA) abortJoin(id instance.ID, _ error) {
	p.mu.Lock()
	if p.instID != id || p.state != control.StateBusy || p.d != nil {
		p.mu.Unlock()
		return
	}
	p.state = control.StateIdle
	p.instID = 0
	hook := p.cfg.OnStateChange
	p.mu.Unlock()
	p.met.aborts.Inc()
	if sp := p.takeJoinSpan(); sp != nil {
		sp.SetError()
		sp.End()
	}
	if hook != nil {
		hook(p.cfg.NodeID, control.StateIdle, 0)
	}
}

// launchDVE creates the environment and runs the image.
func (p *PNA) launchDVE(w *control.Wakeup, img *appimage.Image) {
	p.mu.Lock()
	if p.destroyed || p.instID != w.InstanceID {
		p.mu.Unlock()
		return
	}
	clk := p.ctx.Clock()
	joinSp := p.joinSpan
	p.mu.Unlock()

	dveSp := p.cfg.Spans.Start(joinSp.Context(), "dve-start", p.nodeName())
	var backend *netsim.Endpoint
	var hangup func()
	if p.cfg.DialBackend != nil {
		backend, hangup = p.cfg.DialBackend()
	}
	// Hand the DVE the dve-start span's context (falling back to the
	// join context) so worker task requests parent under this launch.
	dveTrace := dveSp.Context()
	if !dveTrace.Valid() {
		dveTrace = joinSp.Context()
	}
	d, err := dve.Launch(dve.Config{
		Clock:        clk,
		Registry:     p.cfg.Registry,
		Image:        img,
		NodeID:       p.cfg.NodeID,
		InstanceID:   w.InstanceID,
		Backend:      backend,
		Hangup:       hangup,
		TaskDuration: p.cfg.TaskDuration,
		Obs:          p.cfg.Obs,
		Trace:        dveTrace,
		OnTask: func() {
			p.mu.Lock()
			p.tasksDone++
			p.mu.Unlock()
		},
		OnExit: func(error) { p.resetInstance(w.InstanceID) },
	})
	if err != nil {
		if hangup != nil {
			hangup()
		}
		dveSp.SetError()
		dveSp.End()
		p.mu.Lock()
		p.Rejections++
		p.mu.Unlock()
		p.met.rejections.Inc()
		p.abortJoin(w.InstanceID, err)
		return
	}
	p.mu.Lock()
	if p.destroyed {
		p.mu.Unlock()
		dveSp.End()
		d.Destroy()
		return
	}
	p.d = d
	startDur := clk.Now().Sub(p.joinStartedAt)
	if dveSp != nil {
		dveSp.SetDetail("entry=%s", img.EntryPoint)
		p.met.dveStart.ObserveWithExemplar(startDur.Seconds(), dveSp.Context().Trace.String())
	} else {
		p.met.dveStart.ObserveDuration(startDur)
	}
	if w.Lifetime > 0 {
		id := w.InstanceID
		p.lifetimeTimer = clk.AfterFunc(w.Lifetime, func() { p.resetInstance(id) })
	}
	p.mu.Unlock()
	dveSp.End()
	if sp := p.takeJoinSpan(); sp != nil {
		sp.End()
	}
}

// handleReset applies a broadcast reset.
func (p *PNA) handleReset(r *control.Reset) {
	p.mu.Lock()
	target := p.instID
	p.mu.Unlock()
	if r.InstanceID == 0 || r.InstanceID == target {
		p.resetInstance(target)
	}
}

// resetInstance destroys the DVE (if any) and returns to idle.
func (p *PNA) resetInstance(id instance.ID) {
	p.mu.Lock()
	if p.instID != id || p.state != control.StateBusy {
		p.mu.Unlock()
		return
	}
	d := p.d
	p.d = nil
	lt := p.lifetimeTimer
	p.lifetimeTimer = nil
	p.state = control.StateIdle
	p.instID = 0
	hook := p.cfg.OnStateChange
	p.mu.Unlock()
	p.met.resets.Inc()
	if lt != nil {
		lt.Stop()
	}
	if d != nil {
		d.Destroy()
	}
	if hook != nil {
		hook(p.cfg.NodeID, control.StateIdle, 0)
	}
}

// heartbeatLoop reports state to the Controller at the configured
// period (with an initial random phase so a million PNAs do not
// synchronize) and applies reply commands.
func (p *PNA) heartbeatLoop() {
	p.mu.Lock()
	clk := p.ctx.Clock()
	period := p.hbPeriod
	ctrl := p.ctrl
	p.mu.Unlock()

	// Initial phase jitter.
	if period > 0 {
		p.rngMu.Lock()
		jitter := time.Duration(p.cfg.Rng.Int63n(int64(period)))
		p.rngMu.Unlock()
		if !p.hbInterrupt.Sleep(clk, jitter) {
			return
		}
	}
	for {
		p.mu.Lock()
		if p.destroyed {
			p.mu.Unlock()
			return
		}
		hb := &control.Heartbeat{
			NodeID:     p.cfg.NodeID,
			State:      p.state,
			InstanceID: p.instID,
			Profile:    p.cfg.Profile,
			TasksDone:  p.tasksDone,
			SentAt:     clk.Now(),
		}
		p.mu.Unlock()

		ctrl.Send("controller", control.EncodeHeartbeat(hb), control.HeartbeatWireSize)
		pkt, err := ctrl.RecvTimeout(p.cfg.HeartbeatTimeout)
		if err == nil {
			if raw, ok := pkt.Payload.([]byte); ok {
				if reply, derr := control.DecodeHeartbeatReply(raw); derr == nil {
					p.applyReply(reply)
				}
			}
		} else if err == netsim.ErrClosed {
			return
		}

		p.mu.Lock()
		period = p.hbPeriod
		p.mu.Unlock()
		if !p.hbInterrupt.Sleep(clk, period) {
			return
		}
	}
}

func (p *PNA) applyReply(r *control.HeartbeatReply) {
	if r.Period > 0 {
		p.mu.Lock()
		p.hbPeriod = r.Period
		p.mu.Unlock()
	}
	if r.Command == control.CmdReset {
		p.mu.Lock()
		target := p.instID
		p.mu.Unlock()
		p.resetInstance(target)
	}
}
