package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"oddci/internal/simtime"
)

var epoch = time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)

func TestContextStringRoundTrip(t *testing.T) {
	c := Context{Trace: TraceID{0x4bf92f3577b34da6, 0xa3ce929d0e0e4736}, Span: 0x00f067aa0ba902b7, Sampled: true}
	s := c.String()
	if want := "4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"; s != want {
		t.Fatalf("String() = %q, want %q", s, want)
	}
	got, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got != c {
		t.Fatalf("round trip: got %+v, want %+v", got, c)
	}

	unsampled := Context{Trace: c.Trace, Span: c.Span}
	got, err = Parse(unsampled.String())
	if err != nil || got != unsampled {
		t.Fatalf("unsampled round trip: got %+v err %v", got, err)
	}

	if (Context{}).String() != "" {
		t.Fatalf("zero context should render empty")
	}
	if got, err := Parse(""); err != nil || got.Valid() {
		t.Fatalf("empty string should parse to zero context, got %+v err %v", got, err)
	}

	for _, bad := range []string{
		"short",
		strings.Repeat("x", StringLen),
		strings.Repeat("0", StringLen), // right length, wrong separators
		"4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-ff",        // unknown flags
		"4bf92f3577b34da6a3ce929d0e0e47ZZ-00f067aa0ba902b7-01",        // bad hex
		"4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01",        // upper case rejected (canonical form only)
		"4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extras", // trailing
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error", bad)
		}
	}
}

func TestContextBinaryRoundTrip(t *testing.T) {
	c := Context{Trace: TraceID{0xdeadbeefcafef00d, 0x0123456789abcdef}, Span: 42, Sampled: true}
	b := c.AppendBinary(nil)
	if len(b) != EncodedLen {
		t.Fatalf("encoded length %d, want %d", len(b), EncodedLen)
	}
	got, err := DecodeBinary(b)
	if err != nil || got != c {
		t.Fatalf("round trip: got %+v err %v", got, err)
	}

	if got, err := DecodeBinary(make([]byte, EncodedLen)); err != nil || got.Valid() {
		t.Fatalf("all-zero payload should decode to zero context, got %+v err %v", got, err)
	}
	if _, err := DecodeBinary(b[:EncodedLen-1]); err == nil {
		t.Fatalf("short payload should error")
	}
	bad := append([]byte(nil), b...)
	bad[24] = 0x80
	if _, err := DecodeBinary(bad); err == nil {
		t.Fatalf("unknown flags should error")
	}
}

func TestSamplingRate(t *testing.T) {
	sim := simtime.NewSim(epoch)
	half := NewCollector(Config{Clock: sim, SampleRate: 0.5, Seed: 7})
	sampled := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if s := half.Root("op", ""); s != nil {
			sampled++
			s.End()
		}
	}
	if sampled < n*35/100 || sampled > n*65/100 {
		t.Fatalf("rate 0.5 sampled %d/%d", sampled, n)
	}

	never := NewCollector(Config{Clock: sim, SampleRate: -1, Seed: 7})
	for i := 0; i < 100; i++ {
		if s := never.Root("op", ""); s != nil {
			t.Fatalf("rate -1 sampled a trace")
		}
	}
	always := NewCollector(Config{Clock: sim, Seed: 7})
	for i := 0; i < 100; i++ {
		if s := always.Root("op", ""); s == nil {
			t.Fatalf("default rate dropped a trace")
		}
	}
}

func TestCollectorEviction(t *testing.T) {
	c := NewCollector(Config{Clock: simtime.NewSim(epoch), Capacity: 32, Seed: 1})
	for i := 0; i < 500; i++ {
		c.Root("op", "n").End()
	}
	snap := c.Snapshot()
	if len(snap) > 32 {
		t.Fatalf("snapshot retained %d spans, capacity 32", len(snap))
	}
	_, kept, dropped := c.Stats()
	if kept != 500 || dropped != 500-int64(len(snap)) {
		t.Fatalf("stats kept=%d dropped=%d snap=%d", kept, dropped, len(snap))
	}
}

func TestTreeAssembly(t *testing.T) {
	c := NewCollector(Config{Clock: simtime.NewSim(epoch), Seed: 3})
	root := c.Root("wakeup", "ctl")
	child := c.Start(root.Context(), "join", "node-1")
	grand := c.Start(child.Context(), "image-load", "node-1")
	grand.SetDetail("bytes=%d", 1024)
	grand.End()
	child.End()
	sib := c.Start(root.Context(), "dispatch", "backend")
	sib.SetRetry()
	sib.End()
	root.End()

	traces := c.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if !tr.Connected() {
		t.Fatalf("trace should be connected")
	}
	var names []string
	for _, d := range tr.Spans {
		names = append(names, d.Name)
	}
	want := []string{"wakeup", "join", "image-load", "dispatch"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("tree order %v, want %v", names, want)
	}
	depths := tr.Depths()
	if depths[0] != 0 || depths[1] != 1 || depths[2] != 2 || depths[3] != 1 {
		t.Fatalf("depths %v", depths)
	}
	if !tr.Retry {
		t.Fatalf("trace should carry the retry flag")
	}

	// An orphan (parent span never retained) breaks connectedness but
	// still renders.
	c.ForceRecord(Data{Trace: tr.ID, ID: 999, Parent: 12345, Name: "orphan"})
	tr2, ok := c.Lookup(tr.ID.String())
	if !ok || tr2.Connected() {
		t.Fatalf("orphaned trace should not be connected (ok=%v)", ok)
	}

	if _, ok := c.Lookup(tr.ID.String()[:12]); !ok {
		t.Fatalf("prefix lookup failed")
	}
	if _, ok := c.Lookup("ffffffffffff"); ok {
		t.Fatalf("lookup of unknown prefix succeeded")
	}
}

// TestFrozenSimByteIdentical is the clock-discipline regression: two
// collectors with equal seeds over equal virtual clocks must render
// byte-identical timelines — any time.Now() leak would diverge them.
func TestFrozenSimByteIdentical(t *testing.T) {
	render := func() (string, string) {
		sim := simtime.NewSim(epoch)
		c := NewCollector(Config{Clock: sim, Seed: 11})
		var root, child *Span
		sim.AfterFunc(0, func() { root = c.Root("wakeup", "ctl") })
		sim.AfterFunc(5*time.Millisecond, func() { child = c.Start(root.Context(), "join", "n1") })
		sim.AfterFunc(9*time.Millisecond, func() { child.End() })
		sim.AfterFunc(12*time.Millisecond, func() { root.End() })
		sim.Wait()
		tr, ok := c.Lookup(root.Context().Trace.String())
		if !ok {
			t.Fatalf("trace not retained")
		}
		return c.RenderTraces(0), tr.RenderWaterfall()
	}
	idx1, wf1 := render()
	idx2, wf2 := render()
	if idx1 != idx2 {
		t.Fatalf("index render diverged:\n%s\nvs\n%s", idx1, idx2)
	}
	if wf1 != wf2 {
		t.Fatalf("waterfall render diverged:\n%s\nvs\n%s", wf1, wf2)
	}
	if !strings.Contains(wf1, "join") || !strings.Contains(wf1, "+5.0ms") {
		t.Fatalf("waterfall missing expected content:\n%s", wf1)
	}
}

func TestLinkTable(t *testing.T) {
	c := NewCollector(Config{Clock: simtime.NewSim(epoch), Seed: 5})
	ctx := Context{Trace: TraceID{1, 2}, Span: 3, Sampled: true}
	key := LinkKey(7, 1)
	c.SetLink(key, ctx)
	if got, ok := c.GetLink(key); !ok || got != ctx {
		t.Fatalf("GetLink = %+v, %v", got, ok)
	}
	if _, ok := c.GetLink(LinkKey(7, 2)); ok {
		t.Fatalf("unexpected hit")
	}
	// Overwrite must not duplicate the eviction-order entry.
	c.SetLink(key, Context{Trace: TraceID{9, 9}, Span: 9, Sampled: true})
	for i := 0; i < maxLinks+10; i++ {
		c.SetLink(LinkKey(100+uint64(i), 1), ctx)
	}
	if _, ok := c.GetLink(key); ok {
		t.Fatalf("oldest link should have been evicted")
	}
	if _, ok := c.GetLink(LinkKey(100+maxLinks+9, 1)); !ok {
		t.Fatalf("newest link missing")
	}
}

func TestForceRecordOnUnsampledTrace(t *testing.T) {
	c := NewCollector(Config{Clock: simtime.NewSim(epoch), SampleRate: -1, Seed: 2})
	if s := c.Root("wakeup", ""); s != nil {
		t.Fatalf("sampling disabled but Root returned a span")
	}
	c.ForceRecord(Data{Trace: TraceID{1, 1}, ID: 2, Name: "lease-expiry", Retry: true})
	snap := c.Snapshot()
	if len(snap) != 1 || !snap[0].Retry {
		t.Fatalf("forced span not retained: %+v", snap)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Collector
	s := c.Root("x", "")
	s.SetDetail("d")
	s.SetError()
	s.SetRetry()
	s.End()
	if s.Context().Valid() {
		t.Fatalf("nil span context should be zero")
	}
	if s := c.Start(Context{Trace: TraceID{1, 1}, Span: 1, Sampled: true}, "x", ""); s != nil {
		t.Fatalf("nil collector Start should return nil")
	}
	c.ForceRecord(Data{})
	c.SetLink(1, Context{})
	if _, ok := c.GetLink(1); ok {
		t.Fatalf("nil collector GetLink should miss")
	}
	if c.Snapshot() != nil || c.Traces() != nil {
		t.Fatalf("nil collector snapshots should be empty")
	}
	if c.RenderTraces(0) != "" {
		// RenderTraces on nil goes through Traces/Stats; it renders a header.
	}
	if c.Clock() == nil {
		t.Fatalf("nil collector Clock should fall back to real")
	}
	real := NewCollector(Config{})
	if real.Clock() == nil {
		t.Fatalf("default clock missing")
	}

	// Ending twice records once.
	c2 := NewCollector(Config{Clock: simtime.NewSim(epoch), Seed: 1})
	sp := c2.Root("once", "")
	sp.End()
	sp.End()
	if got := len(c2.Snapshot()); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
}

func TestWriteJSONL(t *testing.T) {
	sim := simtime.NewSim(epoch)
	c := NewCollector(Config{Clock: sim, Seed: 4})
	root := c.Root("wakeup", "ctl")
	child := c.Start(root.Context(), "join", "n1")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("invalid JSON line %q: %v", ln, err)
		}
		for _, k := range []string{"trace", "span", "parent", "name", "start", "end"} {
			if _, ok := obj[k]; !ok {
				t.Fatalf("line missing %q: %s", k, ln)
			}
		}
	}
}

// TestConcurrentRecordSnapshot is the -race stress on the collector's
// concurrent record/snapshot path.
func TestConcurrentRecordSnapshot(t *testing.T) {
	c := NewCollector(Config{Clock: simtime.NewReal(), Capacity: 256, Seed: 9})
	const writers, iters = 8, 400
	var writeWg, readWg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWg.Add(1)
		go func(w int) {
			defer writeWg.Done()
			for i := 0; i < iters; i++ {
				root := c.Root("op", "n")
				child := c.Start(root.Context(), "child", "n")
				if i%7 == 0 {
					child.SetRetry()
				}
				child.End()
				root.End()
				c.SetLink(LinkKey(uint64(w), uint64(i)), root.Context())
				c.GetLink(LinkKey(uint64(w), uint64(i/2)))
			}
		}(w)
	}
	readWg.Add(1)
	go func() {
		defer readWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Snapshot()
			c.Traces()
			c.RenderTraces(10)
			var sink bytes.Buffer
			c.WriteJSONL(&sink)
		}
	}()
	writeWg.Wait()
	close(stop)
	readWg.Wait()

	_, kept, _ := c.Stats()
	if kept != writers*iters*2 {
		t.Fatalf("kept %d spans, want %d", kept, writers*iters*2)
	}
}
