package span

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Trace is one assembled causal tree: the retained spans of a single
// trace ID, roots first, children under parents.
type Trace struct {
	ID    TraceID
	Spans []Data // sorted: parents before children, then by start time
	Start time.Time
	End   time.Time
	Err   bool
	Retry bool
}

// Traces assembles the retained spans into per-trace trees, most
// recent trace first (by trace start time, then ID for determinism).
func (c *Collector) Traces() []Trace {
	if c == nil {
		return nil
	}
	byTrace := make(map[TraceID][]Data)
	for _, d := range c.Snapshot() {
		byTrace[d.Trace] = append(byTrace[d.Trace], d)
	}
	out := make([]Trace, 0, len(byTrace))
	for id, spans := range byTrace {
		t := Trace{ID: id, Spans: orderTree(spans)}
		t.Start = spans[0].Start
		t.End = spans[0].End
		for _, d := range spans {
			if d.Start.Before(t.Start) {
				t.Start = d.Start
			}
			if d.End.After(t.End) {
				t.End = d.End
			}
			t.Err = t.Err || d.Err
			t.Retry = t.Retry || d.Retry
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return less128(out[j].ID, out[i].ID)
	})
	return out
}

// Lookup assembles the tree for one trace ID (string or hex-prefix
// form), if any of its spans are retained.
func (c *Collector) Lookup(id string) (Trace, bool) {
	for _, t := range c.Traces() {
		s := t.ID.String()
		if s == id || (len(id) >= 8 && strings.HasPrefix(s, id)) {
			return t, true
		}
	}
	return Trace{}, false
}

func less128(a, b TraceID) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// orderTree sorts spans parents-before-children (depth-first), with
// siblings ordered by start time then span ID. Orphans (parent not
// retained — e.g. the parent hop ran on an untraced peer) sort as
// additional roots after the true root.
func orderTree(spans []Data) []Data {
	children := make(map[SpanID][]Data, len(spans))
	have := make(map[SpanID]bool, len(spans))
	for _, d := range spans {
		have[d.ID] = true
	}
	var roots []Data
	for _, d := range spans {
		if d.Parent == 0 || !have[d.Parent] {
			roots = append(roots, d)
		} else {
			children[d.Parent] = append(children[d.Parent], d)
		}
	}
	byStart := func(s []Data) {
		sort.Slice(s, func(i, j int) bool {
			if !s[i].Start.Equal(s[j].Start) {
				return s[i].Start.Before(s[j].Start)
			}
			if s[i].Seq != s[j].Seq {
				return s[i].Seq < s[j].Seq
			}
			return s[i].ID < s[j].ID
		})
	}
	byStart(roots)
	for _, kids := range children {
		byStart(kids)
	}
	out := make([]Data, 0, len(spans))
	var walk func(d Data)
	walk = func(d Data) {
		out = append(out, d)
		for _, k := range children[d.ID] {
			walk(k)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return out
}

// Depths returns each span's tree depth, aligned with t.Spans.
func (t Trace) Depths() []int {
	depth := make(map[SpanID]int, len(t.Spans))
	out := make([]int, len(t.Spans))
	for i, d := range t.Spans {
		if dp, ok := depth[d.Parent]; ok && d.Parent != 0 {
			out[i] = dp + 1
		}
		depth[d.ID] = out[i]
	}
	return out
}

// Connected reports whether the trace forms a single tree: exactly one
// root, every other span's parent retained.
func (t Trace) Connected() bool {
	have := make(map[SpanID]bool, len(t.Spans))
	for _, d := range t.Spans {
		have[d.ID] = true
	}
	roots := 0
	for _, d := range t.Spans {
		if d.Parent == 0 || !have[d.Parent] {
			roots++
		}
	}
	return roots == 1
}

const waterfallWidth = 32

// RenderWaterfall draws the trace as an indented text waterfall: one
// line per span with offset, duration, a proportional bar, and flags.
func (t Trace) RenderWaterfall() string {
	var b strings.Builder
	total := t.End.Sub(t.Start)
	fmt.Fprintf(&b, "trace %s  %s  spans=%d", t.ID, fmtDur(total), len(t.Spans))
	if t.Retry {
		b.WriteString("  RETRY")
	}
	if t.Err {
		b.WriteString("  ERR")
	}
	b.WriteByte('\n')
	depths := t.Depths()
	for i, d := range t.Spans {
		off := d.Start.Sub(t.Start)
		dur := d.End.Sub(d.Start)
		lo, hi := 0, waterfallWidth
		if total > 0 {
			lo = int(int64(off) * waterfallWidth / int64(total))
			hi = lo + int(int64(dur)*waterfallWidth/int64(total))
		}
		if hi <= lo {
			hi = lo + 1
		}
		if hi > waterfallWidth {
			hi = waterfallWidth
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("=", hi-lo) +
			strings.Repeat(" ", waterfallWidth-hi)
		name := strings.Repeat("  ", depths[i]) + d.Name
		fmt.Fprintf(&b, "  %-28s [%s] +%-9s %-9s", name, bar, fmtDur(off), fmtDur(dur))
		if d.Node != "" {
			fmt.Fprintf(&b, " node=%s", d.Node)
		}
		if d.Detail != "" {
			fmt.Fprintf(&b, " %s", d.Detail)
		}
		if d.Retry {
			b.WriteString(" RETRY")
		}
		if d.Err {
			b.WriteString(" ERR")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d/time.Microsecond)
	}
}

// RenderTraces renders the most recent limit traces (0 = all) as an
// index: one summary line per trace, suitable for /trace.
func (c *Collector) RenderTraces(limit int) string {
	traces := c.Traces()
	if limit > 0 && len(traces) > limit {
		traces = traces[:limit]
	}
	var b strings.Builder
	started, kept, dropped := c.Stats()
	fmt.Fprintf(&b, "traces=%d spans_kept=%d spans_evicted=%d traces_started=%d\n",
		len(traces), kept, dropped, started)
	for _, t := range traces {
		root := "?"
		if len(t.Spans) > 0 {
			root = t.Spans[0].Name
		}
		fmt.Fprintf(&b, "%s  %s  %-20s spans=%-3d", t.ID, t.Start.UTC().Format(time.RFC3339Nano), root, len(t.Spans))
		fmt.Fprintf(&b, " %s", fmtDur(t.End.Sub(t.Start)))
		if t.Retry {
			b.WriteString(" RETRY")
		}
		if t.Err {
			b.WriteString(" ERR")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTrace renders the waterfall for one trace ID (full 32-hex form
// or a ≥8-hex prefix); ok is false when no span of it is retained.
func (c *Collector) RenderTrace(id string) (string, bool) {
	t, ok := c.Lookup(id)
	if !ok {
		return "", false
	}
	return t.RenderWaterfall(), true
}

// WriteJSONL streams every retained span as one JSON object per line,
// grouped by trace (most recent first), tree order within a trace.
func (c *Collector) WriteJSONL(w io.Writer) error {
	for _, t := range c.Traces() {
		for _, d := range t.Spans {
			line := fmt.Sprintf(
				`{"trace":%q,"span":"%016x","parent":"%016x","name":%q,"node":%q,"detail":%q,"start":%q,"end":%q,"err":%t,"retry":%t}`+"\n",
				d.Trace.String(), uint64(d.ID), uint64(d.Parent), d.Name, d.Node, d.Detail,
				d.Start.UTC().Format(time.RFC3339Nano), d.End.UTC().Format(time.RFC3339Nano),
				d.Err, d.Retry)
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}
