// Package span is a dependency-free distributed-tracing subsystem:
// 128-bit trace IDs, parent/child span IDs, head-based sampling, and a
// lock-cheap sharded ring-buffer collector. A trace started at the
// Controller's wakeup broadcast propagates through the TCP coordinator,
// the PNA/DVE task request, backend dispatch/lease/requeue, and result
// commit as one connected tree.
//
// Context is the unit of propagation: a (trace ID, span ID, flags)
// triple with a compact traceparent-style string form that travels in
// JSON fields, banner metadata, and a fixed 25-byte binary suffix on
// task-plane frames. Peers that never learned the format simply ignore
// it — every entry point accepts the zero Context and degrades to an
// unsampled orphan root.
//
// Timestamps come exclusively from the injected simtime.Clock, so a
// frozen simulated clock renders byte-identical waterfalls across runs.
// ID generation is a seeded counter finalized with SplitMix64 — no
// global randomness, so simulated deployments are reproducible too.
package span

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"oddci/internal/simtime"
)

// TraceID identifies one causal tree. 128 bits, rendered as 32 hex
// digits, high word first.
type TraceID [2]uint64

// SpanID identifies one span within a trace. Rendered as 16 hex digits.
type SpanID uint64

// IsZero reports whether the trace ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t[0] == 0 && t[1] == 0 }

// String renders the 32-hex-digit form.
func (t TraceID) String() string { return fmt.Sprintf("%016x%016x", t[0], t[1]) }

// Context is the propagated trace position: which trace, which span is
// the current parent, and whether the head-based sampling decision at
// the root said "record".
type Context struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether the context carries a real trace.
func (c Context) Valid() bool { return !c.Trace.IsZero() && c.Span != 0 }

const (
	flagSampled = 0x01

	// EncodedLen is the length of the fixed binary encoding: trace
	// high word, trace low word, span ID (all big-endian uint64), and
	// one flags byte.
	EncodedLen = 25

	// StringLen is the length of the canonical string form:
	// 32 hex trace digits + '-' + 16 hex span digits + '-' + 2 hex flags.
	StringLen = 32 + 1 + 16 + 1 + 2
)

// String renders the canonical form, e.g.
// "4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01".
// The zero Context renders as the empty string.
func (c Context) String() string {
	if !c.Valid() {
		return ""
	}
	flags := 0
	if c.Sampled {
		flags = flagSampled
	}
	return fmt.Sprintf("%016x%016x-%016x-%02x", c.Trace[0], c.Trace[1], uint64(c.Span), flags)
}

// AppendBinary appends the fixed 25-byte encoding. The zero Context
// encodes as 25 zero bytes (decoders map that back to the zero value).
func (c Context) AppendBinary(b []byte) []byte {
	var flags byte
	if c.Sampled {
		flags = flagSampled
	}
	b = appendU64(b, c.Trace[0])
	b = appendU64(b, c.Trace[1])
	b = appendU64(b, uint64(c.Span))
	return append(b, flags)
}

// DecodeBinary parses the fixed 25-byte encoding produced by
// AppendBinary. Inputs of any other length are an error; an all-zero
// payload yields the zero Context (not an error), which is how an
// untraced hop reads on the wire.
func DecodeBinary(b []byte) (Context, error) {
	if len(b) != EncodedLen {
		return Context{}, fmt.Errorf("span: context length %d, want %d", len(b), EncodedLen)
	}
	var c Context
	c.Trace[0] = readU64(b[0:8])
	c.Trace[1] = readU64(b[8:16])
	c.Span = SpanID(readU64(b[16:24]))
	if b[24]&^flagSampled != 0 {
		return Context{}, fmt.Errorf("span: unknown context flags %#02x", b[24])
	}
	c.Sampled = b[24]&flagSampled != 0
	if !c.Valid() {
		return Context{}, nil
	}
	return c, nil
}

// Parse parses the canonical string form. The empty string parses to
// the zero Context; anything else malformed is an error.
func Parse(s string) (Context, error) {
	if s == "" {
		return Context{}, nil
	}
	if len(s) != StringLen || s[32] != '-' || s[49] != '-' {
		return Context{}, fmt.Errorf("span: malformed context %q", s)
	}
	var c Context
	var ok bool
	if c.Trace[0], ok = parseHex16(s[0:16]); !ok {
		return Context{}, fmt.Errorf("span: malformed context %q", s)
	}
	if c.Trace[1], ok = parseHex16(s[16:32]); !ok {
		return Context{}, fmt.Errorf("span: malformed context %q", s)
	}
	var sp uint64
	if sp, ok = parseHex16(s[33:49]); !ok {
		return Context{}, fmt.Errorf("span: malformed context %q", s)
	}
	c.Span = SpanID(sp)
	var flags uint64
	if flags, ok = parseHex16n(s[50:52]); !ok || flags&^flagSampled != 0 {
		return Context{}, fmt.Errorf("span: malformed context %q", s)
	}
	c.Sampled = flags&flagSampled != 0
	if !c.Valid() {
		return Context{}, nil
	}
	return c, nil
}

// MarshalJSON renders the canonical string form (the zero Context as
// ""), so a Context embeds directly in wire messages as a string field
// that old peers parse as an unknown string and ignore.
func (c Context) MarshalJSON() ([]byte, error) {
	return []byte(`"` + c.String() + `"`), nil
}

// UnmarshalJSON parses the canonical string form; a malformed context
// is an error so a corrupted field cannot silently reparent a trace.
func (c *Context) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("span: context must be a JSON string")
	}
	got, err := Parse(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*c = got
	return nil
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func readU64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func parseHex16(s string) (uint64, bool) { return parseHex16n(s) }

func parseHex16n(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// mix64 is the SplitMix64 finalizer: a cheap bijective scrambler that
// turns sequential counters into well-distributed IDs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Data is one finished span as retained by the Collector.
type Data struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID // zero for roots
	Seq    uint64 // collector-local creation order; tie-breaks equal timestamps
	Name   string
	Node   string
	Detail string
	Start  time.Time
	End    time.Time
	Err    bool
	Retry  bool
}

// Span is an in-flight span. The nil *Span is a valid no-op (what an
// unsampled, non-error path costs: one branch per call), so
// instrumentation never needs to be conditional at the call site.
type Span struct {
	c    *Collector
	data Data
	done atomic.Bool
}

// Context returns the propagation context naming this span as parent.
// The nil span returns the zero Context.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{Trace: s.data.Trace, Span: s.data.ID, Sampled: true}
}

// SetDetail attaches a free-form annotation.
func (s *Span) SetDetail(format string, args ...any) {
	if s == nil {
		return
	}
	if len(args) == 0 {
		s.data.Detail = format
		return
	}
	s.data.Detail = fmt.Sprintf(format, args...)
}

// SetError marks the span failed. Error spans are force-recorded even
// when the enclosing trace lost the sampling draw.
func (s *Span) SetError() {
	if s == nil {
		return
	}
	s.data.Err = true
}

// SetRetry marks the span as a retry path (lease expiry, requeue,
// replica re-launch). Retry spans are force-recorded like errors.
func (s *Span) SetRetry() {
	if s == nil {
		return
	}
	s.data.Retry = true
}

// End stamps the finish time and hands the span to the collector.
// Ending twice is harmless; only the first End records.
func (s *Span) End() {
	if s == nil || s.done.Swap(true) {
		return
	}
	s.data.End = s.c.clk.Now()
	s.c.record(s.data)
}

const collectorShards = 16

type ringShard struct {
	mu   sync.Mutex
	buf  []Data
	head int // index of oldest
	n    int // live count
	seq  uint64
}

// Config sizes a Collector.
type Config struct {
	// Clock stamps span start/end times. Required (simtime.NewReal()
	// for wall-clock deployments).
	Clock simtime.Clock
	// Capacity is the total number of finished spans retained across
	// all shards (default 4096).
	Capacity int
	// SampleRate is the head-based probability, in (0,1], that a new
	// root trace is sampled. Zero means the default (1: sample
	// everything); negative disables sampling entirely. Error and
	// retry evidence still reaches the rings via ForceRecord.
	SampleRate float64
	// Seed drives deterministic ID generation; equal seeds produce
	// equal ID sequences.
	Seed int64
}

// Collector owns sampling decisions, ID generation, the finished-span
// rings, and the wakeup link table. The nil *Collector is fully inert:
// every method is safe and every returned span is the nil no-op.
type Collector struct {
	clk    simtime.Clock
	thresh uint64 // sample iff mix64(trace low) < thresh
	seed   uint64
	ctr    atomic.Uint64

	shards [collectorShards]ringShard

	dropped atomic.Int64
	started atomic.Int64
	kept    atomic.Int64

	links linkTable
}

// NewCollector builds a collector.
func NewCollector(cfg Config) *Collector {
	if cfg.Clock == nil {
		cfg.Clock = simtime.NewReal()
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	rate := cfg.SampleRate
	if rate == 0 {
		rate = 1
	}
	var thresh uint64
	switch {
	case rate >= 1:
		thresh = ^uint64(0)
	case rate <= 0:
		thresh = 0
	default:
		thresh = uint64(rate * float64(1<<63) * 2)
	}
	c := &Collector{
		clk:    cfg.Clock,
		thresh: thresh,
		seed:   mix64(uint64(cfg.Seed) ^ 0x6f64644349747261), // "oddCItra"
	}
	per := (cfg.Capacity + collectorShards - 1) / collectorShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].buf = make([]Data, per)
	}
	c.links.init()
	return c
}

func (c *Collector) nextRaw() uint64        { return c.ctr.Add(1) }
func (c *Collector) idFrom(n uint64) uint64 { return mix64(c.seed ^ n) }

func (c *Collector) nextID() uint64 { return c.idFrom(c.nextRaw()) }

func (c *Collector) sampled(t TraceID) bool {
	if c.thresh == ^uint64(0) {
		return true
	}
	return mix64(t[1]) < c.thresh
}

// Root opens a new trace and returns its root span, or nil when the
// head-based draw says the trace is unsampled (or the collector is
// nil). The returned span's Context is what downstream hops propagate.
func (c *Collector) Root(name, node string) *Span {
	if c == nil {
		return nil
	}
	var t TraceID
	t[0] = c.nextID()
	t[1] = c.nextID()
	c.started.Add(1)
	if !c.sampled(t) {
		return nil
	}
	n := c.nextRaw()
	id := SpanID(c.idFrom(n))
	if id == 0 {
		id = 1
	}
	return &Span{c: c, data: Data{
		Trace: t,
		ID:    id,
		Seq:   n,
		Name:  name,
		Node:  node,
		Start: c.clk.Now(),
	}}
}

// Start opens a child span of parent. A zero or unsampled parent (the
// untraced-peer case) yields nil: the work proceeds untraced, which is
// the graceful-degradation contract for mixed-version deployments.
func (c *Collector) Start(parent Context, name, node string) *Span {
	if c == nil || !parent.Valid() || !parent.Sampled {
		return nil
	}
	n := c.nextRaw()
	id := SpanID(c.idFrom(n))
	if id == 0 {
		id = 1
	}
	return &Span{c: c, data: Data{
		Trace:  parent.Trace,
		ID:     id,
		Parent: parent.Span,
		Seq:    n,
		Name:   name,
		Node:   node,
		Start:  c.clk.Now(),
	}}
}

func (c *Collector) record(d Data) {
	sh := &c.shards[d.Trace[1]%collectorShards]
	sh.mu.Lock()
	if sh.n == len(sh.buf) {
		sh.head = (sh.head + 1) % len(sh.buf)
		sh.n--
		c.dropped.Add(1)
	}
	sh.buf[(sh.head+sh.n)%len(sh.buf)] = d
	sh.n++
	sh.seq++
	sh.mu.Unlock()
	c.kept.Add(1)
}

// ForceRecord records an already-finished span directly — the path for
// error/retry evidence on traces that lost the sampling draw. Callers
// construct the Data themselves (IDs may be zero for orphan evidence).
func (c *Collector) ForceRecord(d Data) {
	if c == nil {
		return
	}
	c.record(d)
}

// Snapshot returns all retained finished spans, oldest first within
// each shard, shards concatenated in order. Safe under concurrent
// record.
func (c *Collector) Snapshot() []Data {
	if c == nil {
		return nil
	}
	var out []Data
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for j := 0; j < sh.n; j++ {
			out = append(out, sh.buf[(sh.head+j)%len(sh.buf)])
		}
		sh.mu.Unlock()
	}
	return out
}

// Stats reports collector counters: traces started (sampled or not),
// spans retained, and spans evicted from the rings.
func (c *Collector) Stats() (started, kept, dropped int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.started.Load(), c.kept.Load(), c.dropped.Load()
}

// Clock returns the collector's injected clock (the Real clock for a
// nil collector), letting instrumented call sites stamp force-recorded
// evidence consistently.
func (c *Collector) Clock() simtime.Clock {
	if c == nil {
		return simtime.NewReal()
	}
	return c.clk
}

// --- link table -----------------------------------------------------
//
// The wakeup broadcast travels the signed control codec, which must
// not change shape under old verifiers. Instead of embedding trace
// context there, the Controller publishes (instanceID, seq) → Context
// in this bounded table and the coordinator/PNA side looks it up when
// a node joins. Keys are instanceID<<32 | seq.

const maxLinks = 1024

type linkTable struct {
	mu    sync.Mutex
	m     map[uint64]Context
	order []uint64
}

func (l *linkTable) init() { l.m = make(map[uint64]Context) }

// LinkKey builds the canonical wakeup link key.
func LinkKey(instanceID uint64, seq uint64) uint64 {
	return instanceID<<32 | seq&0xffffffff
}

// SetLink publishes the trace context for a key, evicting the oldest
// entry beyond the bound.
func (c *Collector) SetLink(key uint64, ctx Context) {
	if c == nil {
		return
	}
	l := &c.links
	l.mu.Lock()
	if _, ok := l.m[key]; !ok {
		l.order = append(l.order, key)
		if len(l.order) > maxLinks {
			delete(l.m, l.order[0])
			l.order = l.order[1:]
		}
	}
	l.m[key] = ctx
	l.mu.Unlock()
}

// GetLink resolves a previously published context.
func (c *Collector) GetLink(key uint64) (Context, bool) {
	if c == nil {
		return Context{}, false
	}
	l := &c.links
	l.mu.Lock()
	ctx, ok := l.m[key]
	l.mu.Unlock()
	return ctx, ok
}
