package oddci_test

import (
	"fmt"
	"time"

	"oddci"
)

// The basic flow: assemble a simulated OddCI-DTV deployment, submit a
// bag of tasks, instantiate an OddCI over every receiver, and read the
// measured makespan. Virtual time makes the run deterministic.
func Example() {
	sys, err := oddci.New(oddci.Options{Nodes: 16, Seed: 1})
	if err != nil {
		panic(err)
	}
	job, err := (&oddci.Generator{
		Tasks: 64, MeanSeconds: 5,
		InputBytes: 512, OutputBytes: 512, ImageBytes: 1 << 20,
	}).Generate()
	if err != nil {
		panic(err)
	}
	handle, err := sys.SubmitJob(job)
	if err != nil {
		panic(err)
	}
	if _, err := sys.CreateInstance(oddci.InstanceSpec{
		Image:              oddci.WorkerImage(1 << 20),
		Target:             16,
		InitialProbability: 1,
	}); err != nil {
		panic(err)
	}
	makespan, err := sys.RunJob(handle)
	if err != nil {
		panic(err)
	}
	fmt.Printf("results: %d\n", len(handle.Results()))
	fmt.Printf("makespan under two minutes: %v\n", makespan < 2*time.Minute)
	// Output:
	// results: 64
	// makespan under two minutes: true
}

// The closed-form model of §5 is available directly: equation (1)
// makespan and equation (2) efficiency for any scenario.
func ExampleParams() {
	p := oddci.Figure6Defaults(100, 10000) // n/N = 100 over 10⁴ nodes
	p = p.WithPhi(1000)                    // suitability Φ = 10³
	fmt.Printf("efficiency: %.3f\n", p.Efficiency())
	fmt.Printf("makespan:   %.0f s\n", p.Makespan())
	// Output:
	// efficiency: 0.978
	// makespan:   5587 s
}

// Custom applications implement AppFunc and register under an image
// entry point; the broadcast wakeup starts them on every compliant
// receiver.
func ExampleSystem_RegisterApp() {
	sys, err := oddci.New(oddci.Options{Nodes: 4, Seed: 2})
	if err != nil {
		panic(err)
	}
	launches := 0
	sys.RegisterApp("hello", func(env *oddci.Env) error {
		launches++
		for env.Sleep(time.Minute) { // stay resident until reset
		}
		return nil
	})
	img := &oddci.Image{Name: "hello", EntryPoint: "hello", Payload: []byte("code")}
	if _, err := sys.CreateInstance(oddci.InstanceSpec{
		Image: img, Target: 4, InitialProbability: 1,
	}); err != nil {
		panic(err)
	}
	sys.After(3*time.Minute, sys.Shutdown)
	sys.Wait()
	fmt.Printf("launched on %d receivers\n", launches)
	// Output:
	// launched on 4 receivers
}
