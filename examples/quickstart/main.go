// Quickstart: instantiate an OddCI over 64 simulated set-top boxes, run
// a 1000-task job, and compare the measured makespan and efficiency
// with the paper's closed-form model (equations 1 and 2).
package main

import (
	"fmt"
	"log"
	"time"

	"oddci"
)

func main() {
	const (
		nodes      = 64
		tasks      = 1000
		imageBytes = 1 << 20 // 1 MiB worker image
	)
	sys, err := oddci.New(oddci.Options{Nodes: nodes, Seed: 2009})
	if err != nil {
		log.Fatal(err)
	}

	job, err := (&oddci.Generator{
		Name:        "quickstart",
		Tasks:       tasks,
		MeanSeconds: 5, // 5 s per task on the reference STB
		InputBytes:  512,
		OutputBytes: 512,
		ImageBytes:  imageBytes,
	}).Generate()
	if err != nil {
		log.Fatal(err)
	}
	handle, err := sys.SubmitJob(job)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.CreateInstance(oddci.InstanceSpec{
		Image:              oddci.WorkerImage(imageBytes),
		Target:             nodes,
		InitialProbability: 1, // take every tuned receiver
	}); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	makespan, err := sys.RunJob(handle)
	if err != nil {
		log.Fatal(err)
	}

	params := job.Params(nodes, 1e6, 150e3)
	fmt.Printf("nodes:              %d\n", nodes)
	fmt.Printf("tasks:              %d (%.0f STB-seconds of work)\n", tasks, job.TotalSTBSeconds())
	fmt.Printf("measured makespan:  %.1fs (simulated in %v of wall time)\n",
		makespan.Seconds(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("model makespan:     %.1fs (eq. 1, random-phase wakeup)\n", params.Makespan())
	fmt.Printf("measured efficiency: %.3f\n",
		job.TotalSTBSeconds()/(makespan.Seconds()*nodes))
	fmt.Printf("model efficiency:    %.3f (eq. 2)\n", params.Efficiency())
	fmt.Printf("single machine would need %.1f hours\n", job.TotalSTBSeconds()/3600)
}
