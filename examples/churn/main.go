// Churn: set-top boxes power-cycle at the viewer's whim while the
// Controller keeps an OddCI instance at its target size by expiring
// silent members and retransmitting wakeup messages — §3.2's
// recomposition loop, visualized as a timeline.
package main

import (
	"fmt"
	"log"
	"time"

	"oddci"
)

func main() {
	const (
		nodes  = 100
		target = 50
	)
	sys, err := oddci.New(oddci.Options{
		Nodes:             nodes,
		Seed:              11,
		HeartbeatPeriod:   20 * time.Second,
		MaintenancePeriod: 30 * time.Second,
		TraceCapacity:     4096,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Evening-TV churn: ~25 minutes on, ~5 minutes off.
	for _, box := range sys.STBs() {
		if err := box.StartChurn(25*time.Minute, 5*time.Minute); err != nil {
			log.Fatal(err)
		}
	}
	inst, err := sys.CreateInstance(oddci.InstanceSpec{
		Image:              oddci.WorkerImage(512 << 10),
		Target:             target,
		InitialProbability: float64(target) / nodes * 1.2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%6s  %9s  %9s  %9s  %s\n", "minute", "live size", "ctrl view", "powered", "wakeup broadcasts")
	for m := 2; m <= 40; m += 2 {
		m := m
		sys.After(time.Duration(m)*time.Minute, func() {
			st, err := inst.Status()
			if err != nil {
				return
			}
			powered := 0
			for _, box := range sys.STBs() {
				if box.Powered() {
					powered++
				}
			}
			fmt.Printf("%6d  %9d  %9d  %9d  %d\n",
				m, sys.LiveBusy(uint64(inst.ID())), st.Busy, powered, st.Wakeups)
		})
	}
	sys.After(41*time.Minute, sys.Shutdown)
	sys.Wait()
	fmt.Printf("\nlast control-plane events:\n%s", sys.Timeline(12))
	fmt.Printf("\ninstance held near %d nodes despite continuous power cycling\n", target)
}
