// Churn: set-top boxes power-cycle at the viewer's whim while the
// Controller keeps an OddCI instance at its target size by expiring
// silent members and retransmitting wakeup messages — §3.2's
// recomposition loop, visualized as a timeline.
package main

import (
	"errors"
	"fmt"
	"log"
	"strings"
	"time"

	"oddci"
)

func main() {
	const (
		nodes  = 100
		target = 50
	)
	sys, err := oddci.New(oddci.Options{
		Nodes:             nodes,
		Seed:              11,
		HeartbeatPeriod:   20 * time.Second,
		MaintenancePeriod: 30 * time.Second,
		TraceCapacity:     4096,
		Metrics:           true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Evening-TV churn: ~25 minutes on, ~5 minutes off.
	for _, box := range sys.STBs() {
		if err := box.StartChurn(25*time.Minute, 5*time.Minute); err != nil {
			log.Fatal(err)
		}
	}
	inst, err := sys.CreateInstance(oddci.InstanceSpec{
		Image:              oddci.WorkerImage(512 << 10),
		Target:             target,
		InitialProbability: float64(target) / nodes * 1.2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%6s  %9s  %9s  %9s  %s\n", "minute", "live size", "ctrl view", "powered", "state")
	for m := 2; m <= 48; m += 2 {
		m := m
		sys.After(time.Duration(m)*time.Minute, func() {
			powered := 0
			for _, box := range sys.STBs() {
				if box.Powered() {
					powered++
				}
			}
			live := sys.LiveBusy(uint64(inst.ID()))
			st, err := inst.Status()
			switch {
			case errors.Is(err, oddci.ErrInstanceGone):
				fmt.Printf("%6d  %9d  %9s  %9d  garbage-collected\n", m, live, "-", powered)
			case err != nil:
				fmt.Printf("%6d  %9d  %9s  %9d  %v\n", m, live, "-", powered, err)
			case st.Destroyed:
				fmt.Printf("%6d  %9d  %9d  %9d  destroyed (reset on air)\n", m, live, st.Busy, powered)
			default:
				fmt.Printf("%6d  %9d  %9d  %9d  live, %d wakeup broadcasts\n",
					m, live, st.Busy, powered, st.Wakeups)
			}
		})
	}
	// Dismantle near the end: the reset stays on air for the
	// retransmission window, then the instance is GC'd and the carousel
	// returns to its baseline content.
	sys.After(42*time.Minute, func() {
		if err := inst.Destroy(); err != nil {
			log.Fatal(err)
		}
	})
	sys.After(49*time.Minute, sys.Shutdown)
	sys.Wait()

	fmt.Printf("\ninstance lifecycle timeline:\n")
	var t0 time.Time
	for _, ev := range sys.TraceEvents() {
		switch ev.Kind {
		case oddci.TraceCreate, oddci.TraceDestroy, oddci.TraceGC,
			oddci.TraceRefreshRetry, oddci.TraceRefreshOK:
			if t0.IsZero() {
				t0 = ev.At
			}
			fmt.Printf("%9s  %-9s  instance=%d  %s\n",
				ev.At.Sub(t0).Truncate(time.Second), ev.Kind, ev.Instance, ev.Detail)
		}
	}
	bytes, files, liveInst, onAir := sys.ContentStats()
	fmt.Printf("\nhead-end after teardown: control file %d B, %d carousel files, %d live, %d resets on air\n",
		bytes, files, liveInst, onAir)

	fmt.Printf("\nfinal telemetry snapshot:\n")
	for _, name := range []string{
		"oddci_controller_heartbeats_total",
		"oddci_controller_wakeups_total",
		"oddci_controller_nodes_expired_total",
		"oddci_controller_instances_gced_total",
		"oddci_pna_joins_total",
		"oddci_pna_resets_total",
		"oddci_dsmcc_broadcast_bytes",
	} {
		if v, ok := sys.Metric(name); ok {
			fmt.Printf("  %-42s %12.0f\n", name, v)
		}
	}

	var jsonl strings.Builder
	if err := sys.WriteTimelineJSONL(&jsonl); err != nil {
		log.Fatal(err)
	}
	lines := strings.Count(jsonl.String(), "\n")
	fmt.Printf("\ntimeline export: %d JSONL events, e.g.\n  %s\n",
		lines, strings.SplitN(jsonl.String(), "\n", 2)[0])
	fmt.Printf("instance held near %d nodes despite continuous power cycling, then drained to nothing\n", target)
}
