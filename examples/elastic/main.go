// Elastic: the §3.2 elasticity story. Several OddCI instances share one
// broadcast network's device population; the Provider creates, resizes
// and dismantles them on demand, and the Controller reallocates nodes
// accordingly.
package main

import (
	"fmt"
	"log"
	"time"

	"oddci"
)

func main() {
	const nodes = 120
	sys, err := oddci.New(oddci.Options{
		Nodes:             nodes,
		Seed:              5,
		HeartbeatPeriod:   20 * time.Second,
		MaintenancePeriod: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	mkImage := func(name string) *oddci.Image {
		return &oddci.Image{
			Name:       name,
			Version:    1,
			EntryPoint: oddci.WorkerEntryPoint,
			Payload:    make([]byte, 256<<10),
		}
	}

	// Phase 1: a genomics instance takes half the population.
	genomics, err := sys.CreateInstance(oddci.InstanceSpec{
		Image: mkImage("genomics"), Target: 60, InitialProbability: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 2 (t=6m): a rendering instance joins; genomics shrinks to
	// make room.
	var rendering *oddci.Instance
	sys.After(6*time.Minute, func() {
		if err := genomics.Resize(30); err != nil {
			log.Print(err)
		}
		rendering, err = sys.CreateInstance(oddci.InstanceSpec{
			Image: mkImage("rendering"), Target: 50, InitialProbability: 0.7,
		})
		if err != nil {
			log.Print(err)
		}
	})

	// Phase 3 (t=20m): genomics finishes and is dismantled.
	sys.After(20*time.Minute, func() {
		if err := genomics.Destroy(); err != nil {
			log.Print(err)
		}
	})

	fmt.Printf("%6s  %9s  %9s  %6s %6s\n", "minute", "genomics", "rendering", "idle", "busy")
	for m := 2; m <= 32; m += 2 {
		m := m
		sys.After(time.Duration(m)*time.Minute, func() {
			idle, busy := sys.Population()
			r := 0
			if rendering != nil {
				r = sys.LiveBusy(uint64(rendering.ID()))
			}
			fmt.Printf("%6d  %9d  %9d  %6d %6d\n",
				m, sys.LiveBusy(uint64(genomics.ID())), r, idle, busy)
		})
	}
	sys.After(33*time.Minute, sys.Shutdown)
	sys.Wait()
	fmt.Println("\ninstances grew, shrank and vanished on demand — no per-device setup anywhere")
}
