// Blastfarm: the paper's motivating workload end to end. A synthetic
// nucleotide database is split into work units; each task carries a
// real, encoded BLAST work unit as its payload. The OddCI instance's
// workers decode and actually execute the searches on their simulated
// set-top boxes, and the collected hits are verified against a local
// run of the same search.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"oddci"
	"oddci/blast"
)

func main() {
	const (
		nodes       = 32
		units       = 128
		dbSeqs      = 1024
		seqLen      = 2000
		stbCellRate = 5e6 // reference-STB alignment cells per second
	)
	rng := rand.New(rand.NewSource(7))

	// Build the database and query; plant alignments so there is
	// something to find.
	query := blast.RandomSeq(rng, 256)
	db := blast.RandomDB(rng, dbSeqs, seqLen, seqLen)
	for i := 0; i < 20; i++ {
		blast.PlantHit(rng, db, query, rng.Intn(dbSeqs), rng.Intn(128), 100, 120, 3)
	}
	params := blast.DefaultParams()
	params.MinScore = 40

	// Ground truth: a single local search.
	local, err := blast.Search(query, db, params)
	if err != nil {
		log.Fatal(err)
	}

	// Shard into work units and wrap them as OddCI tasks whose payloads
	// are the encoded units.
	workUnits := blast.Split(query, db, params, units)
	job := &oddci.Job{Name: "blastfarm", ImageBytes: 2 << 20}
	for _, u := range workUnits {
		raw, err := u.Encode()
		if err != nil {
			log.Fatal(err)
		}
		job.Tasks = append(job.Tasks, oddci.Task{
			ID:          u.ID,
			InputBytes:  len(raw),
			OutputBytes: 2048,
			STBSeconds:  float64(u.CostCells()) / stbCellRate,
			Payload:     raw,
		})
	}

	// Workers actually execute the searches.
	oddci.SetTaskPayloadHandler(func(payload []byte) []byte {
		u, err := blast.DecodeWorkUnit(payload)
		if err != nil {
			return nil
		}
		hits, err := u.Run()
		if err != nil {
			return nil
		}
		return blast.EncodeHits(hits)
	})

	sys, err := oddci.New(oddci.Options{Nodes: nodes, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	handle, err := sys.SubmitJob(job)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.CreateInstance(oddci.InstanceSpec{
		Image:              oddci.WorkerImage(job.ImageBytes),
		Target:             nodes,
		InitialProbability: 1,
	}); err != nil {
		log.Fatal(err)
	}
	makespan, err := sys.RunJob(handle)
	if err != nil {
		log.Fatal(err)
	}

	// Merge and verify against the local run.
	var merged []blast.Hit
	for _, raw := range handle.Results() {
		hits, err := blast.DecodeHits(raw)
		if err != nil {
			log.Fatal(err)
		}
		merged = append(merged, hits...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		if merged[i].SeqID != merged[j].SeqID {
			return merged[i].SeqID < merged[j].SeqID
		}
		return merged[i].SubjStart < merged[j].SubjStart
	})
	match := len(merged) == len(local)
	for i := range merged {
		if !match || merged[i] != local[i] {
			match = false
			break
		}
	}

	fmt.Printf("database:          %d sequences, %.1f Mbases\n", dbSeqs, float64(blast.DBBytes(db))/1e6)
	fmt.Printf("work units:        %d across %d STBs\n", units, nodes)
	fmt.Printf("hits (distributed): %d\n", len(merged))
	fmt.Printf("hits (local):       %d\n", len(local))
	fmt.Printf("results identical:  %v\n", match)
	fmt.Printf("makespan:           %.1fs for %.0f STB-seconds of compute\n",
		makespan.Seconds(), job.TotalSTBSeconds())
	if !match {
		log.Fatal("distributed hits differ from the local run")
	}
}
