// Granularity: the §4.4 sizing question. The paper observes that a
// Folding@home PS3 work unit is built to run ~8 hours, and that
// "an efficient use of DTV receivers can be obtained with an
// appropriate relationship of granularity of the tasks versus the
// amount of available nodes". This example makes that concrete: for a
// fixed amount of total work on a churning TV population, it sweeps the
// task size and reports where efficiency peaks — tasks must be large
// enough to amortize transfers but comfortably shorter than viewer
// sessions.
package main

import (
	"fmt"
	"log"
	"time"

	"oddci/internal/sim"
)

func main() {
	const (
		nodes        = 200
		totalWork    = 400_000.0 // reference-STB seconds (≈ 4.6 node-days)
		meanSession  = 30 * time.Minute
		meanOff      = 5 * time.Minute
		imageBytes   = 8 << 20
		inBytes      = 2048
		outBytes     = 1024
		betaBps      = 1e6
		deltaBps     = 150e3
		trialsPerRow = 3
	)
	fmt.Printf("population: %d STBs, viewer sessions ≈ %v on / %v off\n", nodes, meanSession, meanOff)
	fmt.Printf("total work: %.0f STB-seconds\n\n", totalWork)
	fmt.Printf("%12s  %8s  %10s  %12s  %10s\n",
		"task size", "tasks", "efficiency", "makespan", "tasks lost")

	var bestEff float64
	var bestSize time.Duration
	for _, taskSecs := range []float64{0.5, 2, 10, 30, 120, 600, 1800} {
		n := int(totalWork / taskSecs)
		if n < nodes {
			fmt.Printf("%12v  %8d  (skipped: fewer tasks than nodes)\n",
				time.Duration(taskSecs*float64(time.Second)), n)
			continue
		}
		var effSum, msSum float64
		var lost int
		for trial := 0; trial < trialsPerRow; trial++ {
			res, err := sim.RunChurnJob(sim.ChurnJobConfig{
				JobConfig: sim.JobConfig{
					Nodes:        nodes,
					Tasks:        n,
					ImageBytes:   imageBytes,
					Beta:         betaBps,
					Delta:        deltaBps,
					TaskInBytes:  inBytes,
					TaskOutBytes: outBytes,
					TaskSeconds:  taskSecs,
					Seed:         int64(trial) + 7,
				},
				MeanOn:  meanSession,
				MeanOff: meanOff,
			})
			if err != nil {
				log.Fatal(err)
			}
			effSum += res.Efficiency
			msSum += res.Makespan.Seconds()
			lost += res.TasksLost
		}
		eff := effSum / trialsPerRow
		size := time.Duration(taskSecs * float64(time.Second))
		fmt.Printf("%12v  %8d  %10.3f  %11.0fs  %10d\n",
			size, n, eff, msSum/trialsPerRow, lost/trialsPerRow)
		if eff > bestEff {
			bestEff, bestSize = eff, size
		}
	}
	fmt.Printf("\nbest granularity ≈ %v (efficiency %.3f): big enough to amortize\n", bestSize, bestEff)
	fmt.Printf("transfers and the wakeup, yet well under the %v mean session —\n", meanSession)
	fmt.Printf("the same trade Folding@home makes when sizing PS3 work units.\n")
}
