package blast

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// ReadFASTA parses FASTA-formatted sequences: '>'-prefixed headers (the
// first whitespace-delimited token becomes the ID) followed by sequence
// lines. Bases are uppercased; whitespace is ignored.
func ReadFASTA(r io.Reader) ([]Sequence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var out []Sequence
	var cur *Sequence
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ">") {
			header := strings.TrimSpace(text[1:])
			if header == "" {
				return nil, fmt.Errorf("blast: empty FASTA header at line %d", line)
			}
			id := strings.Fields(header)[0]
			out = append(out, Sequence{ID: id})
			cur = &out[len(out)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("blast: sequence data before any header at line %d", line)
		}
		cur.Data = append(cur.Data, bytes.ToUpper([]byte(text))...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("blast: no sequences in input")
	}
	for _, s := range out {
		if len(s.Data) == 0 {
			return nil, fmt.Errorf("blast: sequence %q has no data", s.ID)
		}
	}
	return out, nil
}

// WriteFASTA renders sequences with the given line width (default 70).
func WriteFASTA(w io.Writer, seqs []Sequence, width int) error {
	if width <= 0 {
		width = 70
	}
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		if _, err := fmt.Fprintf(bw, ">%s\n", s.ID); err != nil {
			return err
		}
		for off := 0; off < len(s.Data); off += width {
			end := off + width
			if end > len(s.Data) {
				end = len(s.Data)
			}
			if _, err := bw.Write(s.Data[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
