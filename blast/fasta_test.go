package blast

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadFASTA(t *testing.T) {
	in := strings.NewReader(`>seq1 some description
ACGTACGT
acgt

>seq2
TTTT
`)
	seqs, err := ReadFASTA(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("sequences = %d", len(seqs))
	}
	if seqs[0].ID != "seq1" || string(seqs[0].Data) != "ACGTACGTACGT" {
		t.Fatalf("seq1 = %+v", seqs[0])
	}
	if seqs[1].ID != "seq2" || string(seqs[1].Data) != "TTTT" {
		t.Fatalf("seq2 = %+v", seqs[1])
	}
}

func TestReadFASTAErrors(t *testing.T) {
	cases := []string{
		"",               // no sequences
		"ACGT\n",         // data before header
		">\nACGT\n",      // empty header
		">only-header\n", // header without data
		">a\nACGT\n>b\n", // trailing empty record
	}
	for i, c := range cases {
		if _, err := ReadFASTA(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// Property: WriteFASTA → ReadFASTA round-trips arbitrary sequence sets
// at arbitrary line widths.
func TestFASTARoundTripProperty(t *testing.T) {
	f := func(seed int64, n, width uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%5 + 1
		seqs := make([]Sequence, count)
		for i := range seqs {
			seqs[i] = Sequence{
				ID:   "s" + string(rune('A'+i)),
				Data: RandomSeq(rng, rng.Intn(300)+1),
			}
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, seqs, int(width)%90); err != nil {
			return false
		}
		got, err := ReadFASTA(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, seqs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
