package blast

// Strand identifies which query orientation produced a hit.
type Strand int

// Strands.
const (
	Plus Strand = iota
	Minus
)

// String implements fmt.Stringer.
func (s Strand) String() string {
	if s == Minus {
		return "minus"
	}
	return "plus"
}

// StrandHit is a hit annotated with the query orientation.
type StrandHit struct {
	Hit
	Strand Strand
}

// ReverseComplement returns the reverse complement of a nucleotide
// sequence; non-ACGT bytes map to 'N'.
func ReverseComplement(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, b := range seq {
		var c byte
		switch b {
		case 'A':
			c = 'T'
		case 'T':
			c = 'A'
		case 'C':
			c = 'G'
		case 'G':
			c = 'C'
		default:
			c = 'N'
		}
		out[len(seq)-1-i] = c
	}
	return out
}

// SearchBothStrands scans db with the query in both orientations, as
// blastn does: DNA features can sit on either strand. Minus-strand hit
// coordinates refer to the reverse-complemented query.
func SearchBothStrands(query []byte, db []Sequence, p Params) ([]StrandHit, error) {
	plus, err := Search(query, db, p)
	if err != nil {
		return nil, err
	}
	minus, err := Search(ReverseComplement(query), db, p)
	if err != nil {
		return nil, err
	}
	out := make([]StrandHit, 0, len(plus)+len(minus))
	for _, h := range plus {
		out = append(out, StrandHit{Hit: h, Strand: Plus})
	}
	for _, h := range minus {
		out = append(out, StrandHit{Hit: h, Strand: Minus})
	}
	// Keep the Search ordering discipline: score-descending.
	sortStrandHits(out)
	return out, nil
}

func sortStrandHits(hits []StrandHit) {
	// Insertion sort keeps this dependency-free and stable; hit lists
	// are short relative to the scan cost.
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && lessStrand(hits[j], hits[j-1]); j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}
}

func lessStrand(a, b StrandHit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.SeqID != b.SeqID {
		return a.SeqID < b.SeqID
	}
	if a.SubjStart != b.SubjStart {
		return a.SubjStart < b.SubjStart
	}
	return a.Strand < b.Strand
}
