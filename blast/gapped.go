package blast

import (
	"errors"
	"fmt"
)

// GapParams extends the ungapped scoring with affine gap penalties.
type GapParams struct {
	Params
	// GapOpen and GapExtend are positive costs (blastn defaults 5/2).
	GapOpen, GapExtend int
	// Band limits the alignment to diagonals within ±Band of the seed
	// diagonal (default 16).
	Band int
}

// DefaultGapParams returns blastn-like gapped defaults.
func DefaultGapParams() GapParams {
	return GapParams{Params: DefaultParams(), GapOpen: 5, GapExtend: 2, Band: 16}
}

// Validate reports parameter problems.
func (g GapParams) Validate() error {
	if err := g.Params.Validate(); err != nil {
		return err
	}
	if g.GapOpen <= 0 || g.GapExtend <= 0 {
		return errors.New("blast: gap costs must be positive")
	}
	if g.Band < 1 {
		return errors.New("blast: band must be at least 1")
	}
	return nil
}

// EditOp is one aligned column type.
type EditOp byte

// Edit operations (CIGAR-style).
const (
	OpMatch  EditOp = 'M' // match or mismatch column
	OpInsert EditOp = 'I' // gap in subject (query base consumed)
	OpDelete EditOp = 'D' // gap in query (subject base consumed)
)

// GappedAlignment is the refined form of a Hit.
type GappedAlignment struct {
	SeqID      string
	Score      int
	QueryStart int
	SubjStart  int
	QueryLen   int
	SubjLen    int
	// Ops is the run-length-encoded edit script.
	Ops []EditRun
	// Identity is the fraction of match columns.
	Identity float64
}

// EditRun is one run of identical operations.
type EditRun struct {
	Op  EditOp
	Len int
}

// Cigar renders the edit script ("87M1D12M").
func (a *GappedAlignment) Cigar() string {
	out := ""
	for _, r := range a.Ops {
		out += fmt.Sprintf("%d%c", r.Len, r.Op)
	}
	return out
}

// Refine runs a banded Smith–Waterman around an ungapped hit, producing
// a gapped local alignment — blastn's second stage. The band is centred
// on the hit's diagonal; the search window extends the hit extent by
// the band on each side (clamped to the sequences).
func Refine(query []byte, subject []byte, hit Hit, g GapParams) (*GappedAlignment, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// Gapped-stage window: the whole query (queries are small) against
	// the subject region the hit's diagonal projects onto, padded by
	// the band.
	q0, q1 := 0, len(query)
	s0 := hit.SubjStart - hit.QueryStart - g.Band
	if s0 < 0 {
		s0 = 0
	}
	s1 := hit.SubjStart - hit.QueryStart + len(query) + g.Band
	if s1 > len(subject) {
		s1 = len(subject)
	}
	q := query[q0:q1]
	s := subject[s0:s1]
	if len(q) == 0 || len(s) == 0 {
		return nil, errors.New("blast: empty refinement window")
	}

	// Banded local DP. diag(i,j) = j - i must stay within
	// centre ± band, where centre is the seed diagonal inside the
	// window.
	centre := (hit.SubjStart - s0) - (hit.QueryStart - q0)
	band := g.Band

	const neg = -1 << 30
	cols := len(s) + 1
	// H: best score ending at (i,j); E/F: gap states (affine).
	H := make([][]int, len(q)+1)
	E := make([][]int, len(q)+1)
	F := make([][]int, len(q)+1)
	for i := range H {
		H[i] = make([]int, cols)
		E[i] = make([]int, cols)
		F[i] = make([]int, cols)
		for j := range H[i] {
			H[i][j] = 0
			E[i][j] = neg
			F[i][j] = neg
		}
	}
	best, bi, bj := 0, 0, 0
	for i := 1; i <= len(q); i++ {
		jLo := 1
		if d := i + centre - band; d > jLo {
			jLo = d
		}
		jHi := len(s)
		if d := i + centre + band; d < jHi {
			jHi = d
		}
		for j := jLo; j <= jHi; j++ {
			sub := g.Mismatch
			if q[i-1] == s[j-1] {
				sub = g.Match
			}
			E[i][j] = maxInt(E[i][j-1]-g.GapExtend, H[i][j-1]-g.GapOpen-g.GapExtend)
			F[i][j] = maxInt(F[i-1][j]-g.GapExtend, H[i-1][j]-g.GapOpen-g.GapExtend)
			h := maxInt(0, maxInt(H[i-1][j-1]+sub, maxInt(E[i][j], F[i][j])))
			H[i][j] = h
			if h > best {
				best, bi, bj = h, i, j
			}
		}
	}
	if best <= 0 {
		return nil, errors.New("blast: no positive-scoring gapped alignment in window")
	}

	// Traceback from (bi, bj) to the local start (H == 0), tracking
	// which affine state we are in.
	type tbState int
	const (
		inH tbState = iota
		inE
		inF
	)
	var ops []EditOp
	i, j := bi, bj
	matches, columns := 0, 0
	state := inH
	for i > 0 && j > 0 {
		switch state {
		case inH:
			h := H[i][j]
			if h == 0 {
				i, j = -i, -j // sentinel: terminate outer loop cleanly
				break
			}
			sub := g.Mismatch
			if q[i-1] == s[j-1] {
				sub = g.Match
			}
			switch {
			case h == H[i-1][j-1]+sub:
				ops = append(ops, OpMatch)
				columns++
				if q[i-1] == s[j-1] {
					matches++
				}
				i--
				j--
			case h == E[i][j]:
				state = inE
			case h == F[i][j]:
				state = inF
			default:
				// Band edge artefact: stop the local alignment here.
				i, j = -i, -j
			}
		case inE:
			ops = append(ops, OpDelete)
			columns++
			if E[i][j] == H[i][j-1]-g.GapOpen-g.GapExtend {
				state = inH
			}
			j--
		case inF:
			ops = append(ops, OpInsert)
			columns++
			if F[i][j] == H[i-1][j]-g.GapOpen-g.GapExtend {
				state = inH
			}
			i--
		}
		if i < 0 {
			i, j = -i, -j
			break
		}
	}
	// Reverse and run-length encode.
	var runs []EditRun
	for k := len(ops) - 1; k >= 0; k-- {
		op := ops[k]
		if len(runs) > 0 && runs[len(runs)-1].Op == op {
			runs[len(runs)-1].Len++
		} else {
			runs = append(runs, EditRun{Op: op, Len: 1})
		}
	}
	qLen, sLen := 0, 0
	for _, r := range runs {
		switch r.Op {
		case OpMatch:
			qLen += r.Len
			sLen += r.Len
		case OpInsert:
			qLen += r.Len
		case OpDelete:
			sLen += r.Len
		}
	}
	return &GappedAlignment{
		SeqID:      hit.SeqID,
		Score:      best,
		QueryStart: q0 + i,
		SubjStart:  s0 + j,
		QueryLen:   qLen,
		SubjLen:    sLen,
		Ops:        runs,
		Identity:   float64(matches) / float64(maxInt(columns, 1)),
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
