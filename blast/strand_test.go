package blast

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReverseComplement(t *testing.T) {
	got := ReverseComplement([]byte("AACGT"))
	if !bytes.Equal(got, []byte("ACGTT")) {
		t.Fatalf("got %s", got)
	}
	if !bytes.Equal(ReverseComplement([]byte("NAX")), []byte("NTN")) {
		t.Fatal("non-ACGT handling wrong")
	}
}

// Property: reverse complement is an involution on ACGT strings.
func TestReverseComplementInvolution(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := RandomSeq(rng, int(n)+1)
		return bytes.Equal(ReverseComplement(ReverseComplement(seq)), seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinusStrandHitFound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	query := RandomSeq(rng, 120)
	db := RandomDB(rng, 6, 800, 800)
	// Plant the REVERSE COMPLEMENT of a query region: invisible to a
	// plus-only search, found on the minus strand.
	rc := ReverseComplement(query)
	copy(db[3].Data[200:280], rc[20:100])

	plusOnly, err := Search(query, db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range plusOnly {
		if h.SeqID == "seq00003" && h.Score >= 60 {
			t.Fatal("plus-only search found the minus-strand feature (planting broken)")
		}
	}
	both, err := SearchBothStrands(query, db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range both {
		if h.SeqID == "seq00003" && h.Strand == Minus && h.Score >= 60 {
			found = true
		}
	}
	if !found {
		t.Fatalf("minus-strand hit not recovered: %+v", both)
	}
}

func TestBothStrandsSupersetOfPlus(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	query := RandomSeq(rng, 100)
	db := RandomDB(rng, 5, 600, 600)
	PlantHit(rng, db, query, 2, 10, 50, 70, 1)
	plus, err := Search(query, db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	both, err := SearchBothStrands(query, db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	plusCount := 0
	for _, h := range both {
		if h.Strand == Plus {
			plusCount++
		}
	}
	if plusCount != len(plus) {
		t.Fatalf("both-strand search lost plus hits: %d vs %d", plusCount, len(plus))
	}
	// Ordering: scores nonincreasing.
	for i := 1; i < len(both); i++ {
		if both[i].Score > both[i-1].Score {
			t.Fatal("strand hits out of score order")
		}
	}
}

func TestStrandString(t *testing.T) {
	if Plus.String() != "plus" || Minus.String() != "minus" {
		t.Fatal("strand strings wrong")
	}
}
