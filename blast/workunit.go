package blast

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// WorkUnit is the distributable task of a BLAST farm: one query against
// a slice of the database. It is what the Backend hands to PNAs.
type WorkUnit struct {
	ID     int
	Query  []byte
	DB     []Sequence
	Params Params
}

// Run executes the search.
func (w *WorkUnit) Run() ([]Hit, error) { return Search(w.Query, w.DB, w.Params) }

// CostCells estimates the work as query×database cells — used to derive
// the task's expected processing time from a calibrated cell rate.
func (w *WorkUnit) CostCells() int64 {
	return int64(len(w.Query)) * int64(DBBytes(w.DB))
}

// Split partitions db into k contiguous work units sharing one query.
func Split(query []byte, db []Sequence, p Params, k int) []WorkUnit {
	if k <= 0 {
		k = 1
	}
	if k > len(db) {
		k = len(db)
	}
	units := make([]WorkUnit, 0, k)
	per := len(db) / k
	extra := len(db) % k
	at := 0
	for i := 0; i < k; i++ {
		n := per
		if i < extra {
			n++
		}
		units = append(units, WorkUnit{ID: i, Query: query, DB: db[at : at+n], Params: p})
		at += n
	}
	return units
}

// Encode serializes the unit for transmission (length-prefixed binary).
func (w *WorkUnit) Encode() ([]byte, error) {
	var b bytes.Buffer
	put32 := func(v int) { binary.Write(&b, binary.BigEndian, uint32(v)) }
	put32(w.ID)
	put32(len(w.Query))
	b.Write(w.Query)
	put32(w.Params.K)
	binary.Write(&b, binary.BigEndian, int32(w.Params.Match))
	binary.Write(&b, binary.BigEndian, int32(w.Params.Mismatch))
	binary.Write(&b, binary.BigEndian, int32(w.Params.XDrop))
	binary.Write(&b, binary.BigEndian, int32(w.Params.MinScore))
	put32(len(w.DB))
	for _, s := range w.DB {
		if len(s.ID) > 255 {
			return nil, fmt.Errorf("blast: sequence id %q too long", s.ID)
		}
		b.WriteByte(byte(len(s.ID)))
		b.WriteString(s.ID)
		put32(len(s.Data))
		b.Write(s.Data)
	}
	return b.Bytes(), nil
}

// DecodeWorkUnit reverses Encode.
func DecodeWorkUnit(raw []byte) (*WorkUnit, error) {
	r := bytes.NewReader(raw)
	get32 := func() (int, error) {
		var v uint32
		err := binary.Read(r, binary.BigEndian, &v)
		return int(v), err
	}
	getI32 := func() (int, error) {
		var v int32
		err := binary.Read(r, binary.BigEndian, &v)
		return int(v), err
	}
	w := &WorkUnit{}
	var err error
	if w.ID, err = get32(); err != nil {
		return nil, err
	}
	qlen, err := get32()
	if err != nil {
		return nil, err
	}
	if qlen > r.Len() {
		return nil, errors.New("blast: truncated query")
	}
	w.Query = make([]byte, qlen)
	if _, err := r.Read(w.Query); err != nil {
		return nil, err
	}
	if w.Params.K, err = get32(); err != nil {
		return nil, err
	}
	if w.Params.Match, err = getI32(); err != nil {
		return nil, err
	}
	if w.Params.Mismatch, err = getI32(); err != nil {
		return nil, err
	}
	if w.Params.XDrop, err = getI32(); err != nil {
		return nil, err
	}
	if w.Params.MinScore, err = getI32(); err != nil {
		return nil, err
	}
	n, err := get32()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		idLen, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		id := make([]byte, idLen)
		if _, err := r.Read(id); err != nil {
			return nil, err
		}
		dlen, err := get32()
		if err != nil {
			return nil, err
		}
		if dlen > r.Len() {
			return nil, errors.New("blast: truncated sequence")
		}
		data := make([]byte, dlen)
		if _, err := r.Read(data); err != nil {
			return nil, err
		}
		w.DB = append(w.DB, Sequence{ID: string(id), Data: data})
	}
	return w, nil
}

// EncodeHits serializes search results (the task's r bytes).
func EncodeHits(hits []Hit) []byte {
	var b bytes.Buffer
	binary.Write(&b, binary.BigEndian, uint32(len(hits)))
	for _, h := range hits {
		b.WriteByte(byte(len(h.SeqID)))
		b.WriteString(h.SeqID)
		for _, v := range []int32{int32(h.QueryStart), int32(h.SubjStart), int32(h.Length), int32(h.Score)} {
			binary.Write(&b, binary.BigEndian, v)
		}
	}
	return b.Bytes()
}

// DecodeHits reverses EncodeHits.
func DecodeHits(raw []byte) ([]Hit, error) {
	r := bytes.NewReader(raw)
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	hits := make([]Hit, 0, n)
	for i := uint32(0); i < n; i++ {
		idLen, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		id := make([]byte, idLen)
		if _, err := r.Read(id); err != nil {
			return nil, err
		}
		var vals [4]int32
		for j := range vals {
			if err := binary.Read(r, binary.BigEndian, &vals[j]); err != nil {
				return nil, err
			}
		}
		hits = append(hits, Hit{
			SeqID:      string(id),
			QueryStart: int(vals[0]),
			SubjStart:  int(vals[1]),
			Length:     int(vals[2]),
			Score:      int(vals[3]),
		})
	}
	return hits, nil
}
