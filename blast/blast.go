// Package blast implements a BLAST-style nucleotide local-alignment
// search — the workload the paper benchmarks on its set-top box (NCBI
// BLASTALL/BLASTCL3 ported to the ST7109). The proprietary binary and
// its databases are unavailable, so this is a from-scratch seed-and-
// extend kernel over synthetic databases: exact k-mer seeding on the
// query, ungapped X-drop extension, per-diagonal deduplication. It is a
// genuinely CPU-bound database scan with the same shape of work as
// blastn, which is what Tables II and III measure.
package blast

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Params tunes the search.
type Params struct {
	// K is the seed (word) length. blastn's default is 11.
	K int
	// Match and Mismatch are the ungapped scoring values (+1/-3 are
	// blastn defaults).
	Match, Mismatch int
	// XDrop stops extension once the running score falls this far below
	// the best seen.
	XDrop int
	// MinScore is the reporting threshold.
	MinScore int
}

// DefaultParams returns blastn-like defaults.
func DefaultParams() Params {
	return Params{K: 11, Match: 1, Mismatch: -3, XDrop: 20, MinScore: 20}
}

// Validate reports parameter problems.
func (p Params) Validate() error {
	switch {
	case p.K < 4 || p.K > 31:
		return fmt.Errorf("blast: word size %d out of range [4,31]", p.K)
	case p.Match <= 0:
		return errors.New("blast: match score must be positive")
	case p.Mismatch >= 0:
		return errors.New("blast: mismatch score must be negative")
	case p.XDrop <= 0:
		return errors.New("blast: X-drop must be positive")
	case p.MinScore <= 0:
		return errors.New("blast: minimum score must be positive")
	}
	return nil
}

// Sequence is one database entry.
type Sequence struct {
	ID   string
	Data []byte // ACGT
}

// Hit is one reported local alignment.
type Hit struct {
	SeqID      string
	QueryStart int
	SubjStart  int
	Length     int
	Score      int
}

var alphabet = []byte("ACGT")

// RandomDB generates n random sequences with lengths uniform in
// [minLen, maxLen].
func RandomDB(rng *rand.Rand, n, minLen, maxLen int) []Sequence {
	db := make([]Sequence, n)
	for i := range db {
		length := minLen
		if maxLen > minLen {
			length += rng.Intn(maxLen - minLen + 1)
		}
		db[i] = Sequence{ID: fmt.Sprintf("seq%05d", i), Data: RandomSeq(rng, length)}
	}
	return db
}

// RandomSeq generates one random nucleotide string.
func RandomSeq(rng *rand.Rand, length int) []byte {
	s := make([]byte, length)
	for i := range s {
		s[i] = alphabet[rng.Intn(4)]
	}
	return s
}

// PlantHit copies query[qStart:qStart+length] into db[seqIdx] at
// subjStart with the given number of point mutations, creating a known
// alignment for tests. It panics on out-of-range coordinates (test
// helper).
func PlantHit(rng *rand.Rand, db []Sequence, query []byte, seqIdx, qStart, subjStart, length, mutations int) {
	target := db[seqIdx].Data
	copy(target[subjStart:subjStart+length], query[qStart:qStart+length])
	for i := 0; i < mutations; i++ {
		pos := subjStart + rng.Intn(length)
		old := target[pos]
		for {
			b := alphabet[rng.Intn(4)]
			if b != old {
				target[pos] = b
				break
			}
		}
	}
}

// code maps a nucleotide to 2 bits; returns 4 for anything else.
func code(b byte) uint64 {
	switch b {
	case 'A':
		return 0
	case 'C':
		return 1
	case 'G':
		return 2
	case 'T':
		return 3
	default:
		return 4
	}
}

// queryIndex maps every k-mer of the query to its start offsets.
type queryIndex struct {
	k    int
	mask uint64
	pos  map[uint64][]int32
}

func buildIndex(query []byte, k int) *queryIndex {
	idx := &queryIndex{k: k, mask: 1<<(2*uint(k)) - 1, pos: make(map[uint64][]int32)}
	var kmer uint64
	valid := 0
	for i, b := range query {
		c := code(b)
		if c > 3 {
			valid = 0
			continue
		}
		kmer = (kmer<<2 | c) & idx.mask
		valid++
		if valid >= k {
			idx.pos[kmer] = append(idx.pos[kmer], int32(i-k+1))
		}
	}
	return idx
}

// Search scans db for local alignments with query.
func Search(query []byte, db []Sequence, p Params) ([]Hit, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(query) < p.K {
		return nil, fmt.Errorf("blast: query shorter than word size %d", p.K)
	}
	idx := buildIndex(query, p.K)
	var hits []Hit
	for _, seq := range db {
		hits = append(hits, searchOne(query, seq, idx, p)...)
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		if hits[i].SeqID != hits[j].SeqID {
			return hits[i].SeqID < hits[j].SeqID
		}
		return hits[i].SubjStart < hits[j].SubjStart
	})
	return hits, nil
}

func searchOne(query []byte, seq Sequence, idx *queryIndex, p Params) []Hit {
	subject := seq.Data
	if len(subject) < p.K {
		return nil
	}
	// Best extent already reported per diagonal, to suppress the many
	// overlapping seeds of one alignment. diag = subjPos - queryPos,
	// shifted to be non-negative.
	covered := make(map[int32]int32) // diag → subject end of last extension
	var hits []Hit
	var kmer uint64
	valid := 0
	for i := 0; i < len(subject); i++ {
		c := code(subject[i])
		if c > 3 {
			valid = 0
			continue
		}
		kmer = (kmer<<2 | c) & idx.mask
		valid++
		if valid < p.K {
			continue
		}
		starts := idx.pos[kmer]
		if len(starts) == 0 {
			continue
		}
		sStart := i - p.K + 1
		for _, qStart32 := range starts {
			qStart := int(qStart32)
			diag := int32(sStart - qStart)
			if end, ok := covered[diag]; ok && int32(sStart) < end {
				continue // inside an already-extended alignment
			}
			hit, subjEnd := extend(query, subject, qStart, sStart, p)
			covered[diag] = int32(subjEnd)
			if hit.Score >= p.MinScore {
				hit.SeqID = seq.ID
				hits = append(hits, hit)
			}
		}
	}
	return hits
}

// extend grows the seed ungapped in both directions with X-drop and
// returns the best-scoring extent plus the subject end coordinate of the
// exploration (for diagonal suppression).
func extend(query, subject []byte, qStart, sStart int, p Params) (Hit, int) {
	// Seed score.
	score := p.K * p.Match
	best := score
	// Right extension.
	qr, sr := qStart+p.K, sStart+p.K
	bestQR := qr
	for qr < len(query) && sr < len(subject) {
		if query[qr] == subject[sr] {
			score += p.Match
		} else {
			score += p.Mismatch
		}
		qr++
		sr++
		if score > best {
			best = score
			bestQR = qr
		}
		if best-score > p.XDrop {
			break
		}
	}
	exploredEnd := sr
	// Left extension from the seed.
	score = best
	ql, sl := qStart, sStart
	bestQL, bestSL := ql, sl
	for ql > 0 && sl > 0 {
		if query[ql-1] == subject[sl-1] {
			score += p.Match
		} else {
			score += p.Mismatch
		}
		ql--
		sl--
		if score > best {
			best = score
			bestQL, bestSL = ql, sl
		}
		if best-score > p.XDrop {
			break
		}
	}
	return Hit{
		QueryStart: bestQL,
		SubjStart:  bestSL,
		Length:     bestQR - bestQL,
		Score:      best,
	}, exploredEnd
}

// DBBytes sums the database's sequence lengths.
func DBBytes(db []Sequence) int {
	total := 0
	for _, s := range db {
		total += len(s.Data)
	}
	return total
}
