package blast

import (
	"math/rand"
	"strings"
	"testing"
)

func TestRefineExactMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	query := RandomSeq(rng, 80)
	subject := make([]byte, 300)
	copy(subject, RandomSeq(rng, 300))
	copy(subject[100:180], query) // exact copy

	hit := Hit{SeqID: "s", QueryStart: 0, SubjStart: 100, Length: 80, Score: 80}
	a, err := Refine(query, subject, hit, DefaultGapParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.Identity != 1 {
		t.Fatalf("identity = %v", a.Identity)
	}
	if len(a.Ops) != 1 || a.Ops[0].Op != OpMatch || a.Ops[0].Len != 80 {
		t.Fatalf("cigar = %s", a.Cigar())
	}
	if a.Score != 80 { // 80 matches × +1
		t.Fatalf("score = %d", a.Score)
	}
	if a.QueryStart != 0 || a.SubjStart != 100 {
		t.Fatalf("coords %d/%d", a.QueryStart, a.SubjStart)
	}
}

func TestRefineFindsGap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	query := RandomSeq(rng, 90)
	// Subject = query with 3 bases deleted in the middle: the gapped
	// aligner must bridge with a 3-column insert (gap in subject).
	subject := make([]byte, 0, 300)
	subject = append(subject, RandomSeq(rng, 100)...)
	subject = append(subject, query[:40]...)
	subject = append(subject, query[43:]...) // skip 3 query bases
	subject = append(subject, RandomSeq(rng, 100)...)

	// Seed: the first exact 40-mer.
	hit := Hit{SeqID: "s", QueryStart: 0, SubjStart: 100, Length: 40, Score: 40}
	a, err := Refine(query, subject, hit, DefaultGapParams())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Cigar(), "3I") {
		t.Fatalf("cigar %s does not bridge the 3-base gap", a.Cigar())
	}
	// Gapped score: 87 matches − open(5) − 3×extend(2) = 76.
	if a.Score != 87-5-6 {
		t.Fatalf("score = %d, want 76", a.Score)
	}
	if a.QueryLen != 90 || a.SubjLen != 87 {
		t.Fatalf("aligned spans %d/%d, want 90/87", a.QueryLen, a.SubjLen)
	}
	if a.Identity < 0.95 {
		t.Fatalf("identity = %v", a.Identity)
	}
}

func TestRefineDeletionInQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	full := RandomSeq(rng, 90)
	// Query missing 2 bases that the subject has: a 'D' run.
	query := append(append([]byte{}, full[:50]...), full[52:]...)
	subject := make([]byte, 0, 250)
	subject = append(subject, RandomSeq(rng, 80)...)
	subject = append(subject, full...)
	subject = append(subject, RandomSeq(rng, 80)...)

	hit := Hit{SeqID: "s", QueryStart: 0, SubjStart: 80, Length: 50, Score: 50}
	a, err := Refine(query, subject, hit, DefaultGapParams())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Cigar(), "2D") {
		t.Fatalf("cigar %s does not show the subject-only bases", a.Cigar())
	}
}

func TestRefineEndToEndAfterSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	query := RandomSeq(rng, 120)
	db := RandomDB(rng, 4, 600, 600)
	PlantHit(rng, db, query, 1, 10, 200, 100, 2)
	hits, err := Search(query, db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no seed hits")
	}
	top := hits[0]
	var subject []byte
	for _, s := range db {
		if s.ID == top.SeqID {
			subject = s.Data
		}
	}
	a, err := Refine(query, subject, top, DefaultGapParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.Score < top.Score {
		t.Fatalf("gapped score %d below ungapped %d", a.Score, top.Score)
	}
	if a.Identity < 0.9 {
		t.Fatalf("identity = %v", a.Identity)
	}
}

func TestRefineValidation(t *testing.T) {
	g := DefaultGapParams()
	g.GapOpen = 0
	if _, err := Refine([]byte("ACGT"), []byte("ACGT"), Hit{Length: 4}, g); err == nil {
		t.Fatal("zero gap-open accepted")
	}
	g = DefaultGapParams()
	g.Band = 0
	if _, err := Refine([]byte("ACGT"), []byte("ACGT"), Hit{Length: 4}, g); err == nil {
		t.Fatal("zero band accepted")
	}
}

func TestCigarRendering(t *testing.T) {
	a := &GappedAlignment{Ops: []EditRun{{OpMatch, 87}, {OpDelete, 1}, {OpMatch, 12}}}
	if a.Cigar() != "87M1D12M" {
		t.Fatalf("cigar = %s", a.Cigar())
	}
}
