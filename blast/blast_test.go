package blast

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestExactMatchFound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	query := RandomSeq(rng, 100)
	db := RandomDB(rng, 5, 500, 500)
	// Plant query[20:80] at position 100 of sequence 2, no mutations.
	PlantHit(rng, db, query, 2, 20, 100, 60, 0)
	hits, err := Search(query, db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("planted exact match not found")
	}
	top := hits[0]
	if top.SeqID != "seq00002" {
		t.Fatalf("top hit in %s, want seq00002", top.SeqID)
	}
	if top.Score < 60 {
		t.Fatalf("score %d < planted length 60", top.Score)
	}
	if top.Length < 60 {
		t.Fatalf("length %d < 60", top.Length)
	}
	// The alignment must actually match at the reported coordinates.
	q := query[top.QueryStart : top.QueryStart+top.Length]
	var subj []byte
	for _, s := range db {
		if s.ID == top.SeqID {
			subj = s.Data[top.SubjStart : top.SubjStart+top.Length]
		}
	}
	matches := 0
	for i := range q {
		if q[i] == subj[i] {
			matches++
		}
	}
	if matches < 60 {
		t.Fatalf("only %d matching columns in reported alignment", matches)
	}
}

func TestMutatedMatchStillFound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	query := RandomSeq(rng, 200)
	db := RandomDB(rng, 10, 1000, 1000)
	PlantHit(rng, db, query, 4, 50, 300, 120, 5) // ~4% divergence
	hits, err := Search(query, db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hits {
		if h.SeqID == "seq00004" && h.Score >= 50 {
			found = true
		}
	}
	if !found {
		t.Fatalf("mutated hit not recovered; hits: %+v", hits)
	}
}

func TestNoSpuriousStrongHits(t *testing.T) {
	// Random 100-mer vs random DB: chance 11-mer seeds occur, but no
	// high-scoring alignments should survive.
	rng := rand.New(rand.NewSource(3))
	query := RandomSeq(rng, 100)
	db := RandomDB(rng, 20, 2000, 2000)
	p := DefaultParams()
	p.MinScore = 40
	hits, err := Search(query, db, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("random data produced %d hits ≥40: %+v", len(hits), hits[0])
	}
}

func TestSearchDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	query := RandomSeq(rng, 150)
	db := RandomDB(rng, 8, 800, 1200)
	PlantHit(rng, db, query, 1, 10, 50, 80, 2)
	h1, _ := Search(query, db, DefaultParams())
	h2, _ := Search(query, db, DefaultParams())
	if !reflect.DeepEqual(h1, h2) {
		t.Fatal("search is not deterministic")
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{K: 2, Match: 1, Mismatch: -1, XDrop: 1, MinScore: 1},
		{K: 11, Match: 0, Mismatch: -1, XDrop: 1, MinScore: 1},
		{K: 11, Match: 1, Mismatch: 1, XDrop: 1, MinScore: 1},
		{K: 11, Match: 1, Mismatch: -1, XDrop: 0, MinScore: 1},
		{K: 11, Match: 1, Mismatch: -1, XDrop: 1, MinScore: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Search([]byte("ACGT"), nil, DefaultParams()); err == nil {
		t.Fatal("query shorter than K accepted")
	}
}

func TestSplitPartitionsWholeDB(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := RandomDB(rng, 17, 10, 20)
	query := RandomSeq(rng, 50)
	units := Split(query, db, DefaultParams(), 5)
	if len(units) != 5 {
		t.Fatalf("units = %d", len(units))
	}
	total := 0
	for _, u := range units {
		total += len(u.DB)
	}
	if total != 17 {
		t.Fatalf("split covers %d of 17 sequences", total)
	}
	// Degenerate k values.
	if got := Split(query, db, DefaultParams(), 0); len(got) != 1 {
		t.Fatal("k=0 should yield one unit")
	}
	if got := Split(query, db, DefaultParams(), 100); len(got) != 17 {
		t.Fatalf("k>len(db) should cap at len(db), got %d", len(got))
	}
}

// Property: splitting never changes the union of hits (hit set is
// partition-invariant up to ordering).
func TestSplitInvarianceProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		query := RandomSeq(rng, 80)
		db := RandomDB(rng, 6, 300, 500)
		PlantHit(rng, db, query, rng.Intn(6), 5, 40, 60, 1)
		p := DefaultParams()
		whole, err := Search(query, db, p)
		if err != nil {
			return false
		}
		k := int(kRaw)%6 + 1
		var parts []Hit
		for _, u := range Split(query, db, p, k) {
			hs, err := u.Run()
			if err != nil {
				return false
			}
			parts = append(parts, hs...)
		}
		if len(whole) != len(parts) {
			return false
		}
		seen := make(map[Hit]int)
		for _, h := range whole {
			seen[h]++
		}
		for _, h := range parts {
			seen[h]--
		}
		for _, c := range seen {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkUnitEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	u := WorkUnit{
		ID:     7,
		Query:  RandomSeq(rng, 60),
		DB:     RandomDB(rng, 3, 40, 80),
		Params: DefaultParams(),
	}
	raw, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWorkUnit(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, u) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", *got, u)
	}
}

func TestWorkUnitDecodeTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := WorkUnit{Query: RandomSeq(rng, 30), DB: RandomDB(rng, 2, 20, 20), Params: DefaultParams()}
	raw, _ := u.Encode()
	for _, cut := range []int{0, 3, 10, len(raw) - 1} {
		if _, err := DecodeWorkUnit(raw[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestHitsEncodeDecodeRoundTrip(t *testing.T) {
	hits := []Hit{
		{SeqID: "seq00001", QueryStart: 3, SubjStart: 99, Length: 42, Score: 38},
		{SeqID: "x", QueryStart: 0, SubjStart: 0, Length: 11, Score: 11},
	}
	got, err := DecodeHits(EncodeHits(hits))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, hits) {
		t.Fatalf("mismatch: %+v vs %+v", got, hits)
	}
	empty, err := DecodeHits(EncodeHits(nil))
	if err != nil || len(empty) != 0 {
		t.Fatal("empty hits round trip failed")
	}
}

func TestCostCellsScalesWithDB(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q := RandomSeq(rng, 100)
	small := WorkUnit{Query: q, DB: RandomDB(rng, 2, 100, 100)}
	large := WorkUnit{Query: q, DB: RandomDB(rng, 20, 100, 100)}
	if large.CostCells() != 10*small.CostCells() {
		t.Fatalf("cost not linear in DB size: %d vs %d", large.CostCells(), small.CostCells())
	}
}

func TestNonACGTSkipped(t *testing.T) {
	// Ns in either sequence must not crash or produce seeds through them.
	query := []byte("ACGTACGTACGTNNNNACGTACGTACGT")
	db := []Sequence{{ID: "s", Data: []byte("TTTTACGTACGTACGTNNNNTTTTTTTT")}}
	p := DefaultParams()
	p.K = 8
	p.MinScore = 8
	if _, err := Search(query, db, p); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSearch100x1M(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	query := RandomSeq(rng, 100)
	db := RandomDB(rng, 100, 10000, 10000) // 1 Mbase
	p := DefaultParams()
	b.SetBytes(int64(DBBytes(db)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(query, db, p); err != nil {
			b.Fatal(err)
		}
	}
}
