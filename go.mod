module oddci

go 1.22
