// Package oddci is the public API of the OddCI reproduction: an
// On-demand Distributed Computing Infrastructure (Costa et al., 2009)
// built over an emulated digital-TV broadcast network.
//
// A System assembles the full OddCI-DTV stack — Provider, Controller
// (carousel + AIT head-end), Backend, and a fleet of simulated set-top
// boxes running PNA Xlets under DTV middleware. Everything runs over a
// virtual clock by default, so a day of protocol activity simulates in
// seconds and deterministically; pass RealTime to run against the wall
// clock instead.
//
// Typical use:
//
//	sys, _ := oddci.New(oddci.Options{Nodes: 64, Seed: 1})
//	job, _ := (&oddci.Generator{Tasks: 1000, MeanSeconds: 5,
//	    InputBytes: 512, OutputBytes: 512, ImageBytes: 1 << 20}).Generate()
//	handle, _ := sys.SubmitJob(job)
//	sys.CreateInstance(oddci.InstanceSpec{
//	    Image:  oddci.WorkerImage(1 << 20),
//	    Target: 64, InitialProbability: 1,
//	})
//	makespan, _ := sys.RunJob(handle)
package oddci

import (
	"errors"
	"io"
	"net/http"
	"time"

	"oddci/internal/analytic"
	"oddci/internal/appimage"
	"oddci/internal/core/backend"
	"oddci/internal/core/controller"
	"oddci/internal/core/dve"
	"oddci/internal/core/instance"
	"oddci/internal/core/provider"
	"oddci/internal/dsmcc"
	"oddci/internal/obs"
	"oddci/internal/simtime"
	"oddci/internal/span"
	"oddci/internal/stb"
	"oddci/internal/system"
	"oddci/internal/trace"
	"oddci/internal/workload"
)

// Re-exported domain types. These are the stable names; the internal
// packages they alias are implementation layout.
type (
	// Image is a deployable application image.
	Image = appimage.Image
	// InstanceSpec describes a requested OddCI instance.
	InstanceSpec = controller.InstanceSpec
	// InstanceStatus is the consolidated instance view.
	InstanceStatus = controller.InstanceStatus
	// Instance is a live handle on a provisioned instance.
	Instance = provider.Instance
	// Requirements filter eligible devices in a wakeup.
	Requirements = instance.Requirements
	// DeviceProfile describes one node's capabilities.
	DeviceProfile = instance.DeviceProfile
	// Job is a bag of independent tasks.
	Job = workload.Job
	// Task is one unit of work.
	Task = workload.Task
	// Generator builds synthetic jobs.
	Generator = workload.Generator
	// JobHandle tracks a submitted job.
	JobHandle = backend.JobHandle
	// Params is the closed-form performance model of §5.
	Params = analytic.Params
	// Env is the sandbox view handed to custom applications.
	Env = dve.Env
	// AppFunc is a custom application behaviour.
	AppFunc = dve.AppFunc
	// PerfModel converts task times across device modes.
	PerfModel = stb.PerfModel
	// STB is one simulated receiver.
	STB = stb.STB
	// TraceEvent is one control-plane timeline entry.
	TraceEvent = trace.Event
	// TraceKind classifies trace events.
	TraceKind = trace.Kind
)

// Trace event kinds.
const (
	TraceWakeup   = trace.KindWakeup
	TraceReset    = trace.KindReset
	TraceJoin     = trace.KindJoin
	TraceLeave    = trace.KindLeave
	TracePowerOn  = trace.KindPowerOn
	TracePowerOff = trace.KindPowerOff
	// Instance lifecycle and head-end refresh health.
	TraceCreate       = trace.KindCreate
	TraceTrim         = trace.KindTrim
	TraceDestroy      = trace.KindDestroy
	TraceGC           = trace.KindGC
	TraceRefreshRetry = trace.KindRefreshRetry
	TraceRefreshOK    = trace.KindRefreshOK
)

// Sentinel errors for instance lookups (match with errors.Is).
var (
	// ErrUnknownInstance reports an instance ID that was never issued.
	ErrUnknownInstance = controller.ErrUnknownInstance
	// ErrInstanceGone reports an instance that was destroyed and, after
	// its reset retransmission window, garbage-collected.
	ErrInstanceGone = controller.ErrInstanceGone
)

// Device classes for Requirements.
const (
	AnyClass     = instance.AnyClass
	ClassSTB     = instance.ClassSTB
	ClassMobile  = instance.ClassMobile
	ClassDesktop = instance.ClassDesktop
	ClassConsole = instance.ClassConsole
)

// WorkerEntryPoint is the entry point of the built-in bag-of-tasks
// worker.
const WorkerEntryPoint = backend.WorkerEntryPoint

// SetTaskPayloadHandler installs the process-wide function the built-in
// worker uses to execute concrete task payloads (tasks whose Payload
// carries real work, e.g. an encoded BLAST work unit). The returned
// bytes travel back to the Backend as the task result.
func SetTaskPayloadHandler(fn func(payload []byte) []byte) {
	backend.RunConcrete = fn
}

// Figure6Defaults returns the paper's Figure 6/7 scenario parameters.
func Figure6Defaults(ratio, nodes float64) Params {
	return analytic.Figure6Defaults(ratio, nodes)
}

// WorkerImage builds an image of the given payload size that runs the
// built-in worker.
func WorkerImage(payloadBytes int) *Image {
	return &Image{
		Name:       "oddci-worker",
		Version:    1,
		EntryPoint: WorkerEntryPoint,
		Payload:    make([]byte, payloadBytes),
	}
}

// Options sizes a deployment. The zero value of every field selects the
// paper's defaults (β = 1 Mbps, δ = 150 kbps, all nodes powered).
type Options struct {
	// Nodes is the number of set-top boxes. Required.
	Nodes int
	// Beta is the spare broadcast capacity (bps).
	Beta float64
	// Delta is the per-node direct-channel capacity (bps).
	Delta float64
	// Seed drives all randomness; runs with equal seeds are
	// reproducible.
	Seed int64
	// RealTime runs against the wall clock instead of the simulated
	// one. Virtual-time runs are the default and are deterministic.
	RealTime bool
	// HeartbeatPeriod is the PNA reporting interval.
	HeartbeatPeriod time.Duration
	// MaintenancePeriod is the Controller's size-control loop interval.
	MaintenancePeriod time.Duration
	// StandbyFraction of nodes idle in standby (faster CPU).
	StandbyFraction float64
	// BlockCacheReceivers selects the optimized carousel receiver
	// strategy instead of the paper's file-granularity one.
	BlockCacheReceivers bool
	// Replication runs every task on this many distinct nodes with
	// majority voting at the Backend — redundancy against faulty
	// devices (default 1).
	Replication int
	// IPMulticast runs the broadcast over the FLUTE-style IP-multicast
	// substrate instead of the DTV DSM-CC carousel (§3.3's alternative
	// enabling technology).
	IPMulticast bool
	// TraceCapacity, if positive, records the control-plane timeline
	// (wakeups, joins, resets, power transitions) into a ring of this
	// many events, readable via Timeline and TraceEvents.
	TraceCapacity int
	// SpanCapacity, if positive, enables end-to-end causal tracing:
	// every sampled wakeup broadcast starts a distributed trace whose
	// spans (join, image-load, dve-start, dispatch, lease-expiry,
	// commit) land in a ring of this many entries, readable via
	// RenderTraces / RenderTrace / WriteSpansJSONL and served on
	// /trace by MetricsHandler.
	SpanCapacity int
	// SpanSampleRate is the head-based sampling rate in [0,1]; 0 means
	// sample every trace, negative disables sampling entirely (error
	// and retry paths still leave span evidence). Requires
	// SpanCapacity.
	SpanSampleRate float64
	// Metrics enables the telemetry registry: every component reports
	// counters, gauges and latency histograms, readable via Metric,
	// MetricsJSON, MetricsText, and servable over HTTP with
	// MetricsHandler.
	Metrics bool
	// StateDir, if set, makes the control plane durable: the Controller
	// journals instance lifecycle mutations there and CrashController /
	// RestartController exercise a hard stop plus snapshot+journal
	// recovery while the carousel and devices keep running.
	StateDir string
}

// System is an assembled OddCI-DTV deployment.
type System struct {
	sys    *system.System
	clk    simtime.Clock
	sim    *simtime.Sim // nil in real-time mode
	tracer *trace.Recorder
	obs    *obs.Registry
	spans  *span.Collector
}

// New assembles and starts a deployment.
func New(opts Options) (*System, error) {
	var clk simtime.Clock
	var sim *simtime.Sim
	if opts.RealTime {
		clk = simtime.NewReal()
	} else {
		sim = simtime.NewSim(time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC))
		clk = sim
	}
	strategy := dsmcc.FileGranularity
	if opts.BlockCacheReceivers {
		strategy = dsmcc.BlockCache
	}
	transport := system.TransportDTV
	if opts.IPMulticast {
		transport = system.TransportIPMulticast
	}
	var tracer *trace.Recorder
	if opts.TraceCapacity > 0 {
		tracer = trace.NewRecorder(opts.TraceCapacity).WithClock(clk)
	}
	var reg *obs.Registry
	if opts.Metrics {
		reg = obs.NewRegistry()
	}
	var spans *span.Collector
	if opts.SpanCapacity > 0 {
		spans = span.NewCollector(span.Config{
			Clock:      clk,
			Capacity:   opts.SpanCapacity,
			SampleRate: opts.SpanSampleRate,
			Seed:       opts.Seed + 1,
		})
	}
	sys, err := system.New(system.Config{
		Clock:             clk,
		Nodes:             opts.Nodes,
		Beta:              opts.Beta,
		Delta:             opts.Delta,
		Seed:              opts.Seed,
		HeartbeatPeriod:   opts.HeartbeatPeriod,
		MaintenancePeriod: opts.MaintenancePeriod,
		StandbyFraction:   opts.StandbyFraction,
		Strategy:          strategy,
		Replication:       opts.Replication,
		Transport:         transport,
		Trace:             tracer,
		Obs:               reg,
		Spans:             spans,
		StateDir:          opts.StateDir,
	})
	if err != nil {
		return nil, err
	}
	if err := sys.Start(); err != nil {
		return nil, err
	}
	return &System{sys: sys, clk: clk, sim: sim, tracer: tracer, obs: reg, spans: spans}, nil
}

// Timeline renders the recorded control-plane events (the last limit
// entries; 0 = all). Requires Options.TraceCapacity.
func (s *System) Timeline(limit int) string {
	if s.tracer == nil {
		return "(tracing disabled; set Options.TraceCapacity)\n"
	}
	return s.tracer.Render(limit)
}

// TraceEvents returns the recorded events, oldest first.
func (s *System) TraceEvents() []TraceEvent {
	if s.tracer == nil {
		return nil
	}
	return s.tracer.Events()
}

// WriteTimelineJSONL streams the recorded trace as one JSON object per
// line, oldest first. Requires Options.TraceCapacity.
func (s *System) WriteTimelineJSONL(w io.Writer) error {
	if s.tracer == nil {
		return errors.New("oddci: tracing disabled; set Options.TraceCapacity")
	}
	return s.tracer.WriteJSONL(w)
}

// Metric returns the current value of a named counter or gauge (and
// whether it exists). Requires Options.Metrics.
func (s *System) Metric(name string) (float64, bool) {
	if s.obs == nil {
		return 0, false
	}
	return s.obs.Value(name)
}

// MetricsJSON renders the full telemetry snapshot as expvar-style JSON.
// Requires Options.Metrics.
func (s *System) MetricsJSON() string {
	if s.obs == nil {
		return "{}\n"
	}
	return s.obs.RenderJSON()
}

// MetricsText renders the full telemetry snapshot in the Prometheus
// text exposition format. Requires Options.Metrics.
func (s *System) MetricsText() string {
	if s.obs == nil {
		return ""
	}
	return s.obs.RenderPrometheus()
}

// RenderTraces renders an index of the most recent limit distributed
// traces (0 = all retained). Requires Options.SpanCapacity.
func (s *System) RenderTraces(limit int) string {
	if s.spans == nil {
		return "(span tracing disabled; set Options.SpanCapacity)\n"
	}
	return s.spans.RenderTraces(limit)
}

// RenderTrace renders one trace's span waterfall by full 32-hex trace
// ID or a unique ≥8-hex prefix. Requires Options.SpanCapacity.
func (s *System) RenderTrace(id string) (string, bool) {
	if s.spans == nil {
		return "", false
	}
	return s.spans.RenderTrace(id)
}

// WriteSpansJSONL streams every retained span as one JSON object per
// line. Requires Options.SpanCapacity.
func (s *System) WriteSpansJSONL(w io.Writer) error {
	if s.spans == nil {
		return errors.New("oddci: span tracing disabled; set Options.SpanCapacity")
	}
	return s.spans.WriteJSONL(w)
}

// Spans exposes the deployment's span collector (nil when
// Options.SpanCapacity is unset) for tests and custom exposition.
func (s *System) Spans() *span.Collector { return s.spans }

// MetricsHandler serves /metrics, /varz, /healthz, /timeline and
// /trace for this deployment, or nil when Options.Metrics is unset.
func (s *System) MetricsHandler() http.Handler {
	if s.obs == nil {
		return nil
	}
	var timeline obs.TimelineSource
	if s.tracer != nil {
		timeline = s.tracer
	}
	var traces obs.TraceSource
	if s.spans != nil {
		traces = s.spans
	}
	return obs.NewHandler(s.obs, timeline, traces)
}

// Now returns the deployment's current (virtual or wall) time.
func (s *System) Now() time.Time { return s.clk.Now() }

// RegisterApp installs a custom application behaviour on every node
// under the given image entry point.
func (s *System) RegisterApp(entryPoint string, fn AppFunc) {
	s.sys.Registry.Register(entryPoint, fn)
}

// SubmitJob enqueues a job at the Backend.
func (s *System) SubmitJob(job *Job) (*JobHandle, error) {
	return s.sys.Backend.Submit(job)
}

// CreateInstance asks the Provider for an OddCI instance.
func (s *System) CreateInstance(spec InstanceSpec) (*Instance, error) {
	return s.sys.Provider.Create(spec)
}

// Population reports the Controller's (heartbeat-derived) view of idle
// and busy nodes.
func (s *System) Population() (idle, busy int) { return s.sys.Provider.Population() }

// LiveBusy reports the oracle count of nodes busy on an instance id —
// ground truth available because the devices are simulated.
func (s *System) LiveBusy(id uint64) int {
	return s.sys.LiveBusy(instance.ID(id))
}

// STBs exposes the simulated devices (churn control, power, modes).
func (s *System) STBs() []*STB { return s.sys.STBs }

// ContentStats reports the head-end broadcast content assembled from
// current Controller state: control-file bytes, carousel file count,
// live instances, and destroyed instances whose reset is still on air.
func (s *System) ContentStats() (controlFileBytes, carouselFiles, live, destroyedOnAir int) {
	return s.sys.ContentStats()
}

// CrashController hard-stops the control plane in place, as a killed
// coordinator process would: loops halt, the journal closes, heartbeats
// go unanswered. The carousel, devices, running DVEs, and Backend stay
// up. Requires Options.StateDir.
func (s *System) CrashController() error { return s.sys.CrashController() }

// RestartController brings the control plane back from Options.StateDir
// by replaying its snapshot+journal: the recovered Controller re-airs
// the recorded instances and re-adopts surviving members from their
// next heartbeat instead of re-waking them.
func (s *System) RestartController() error { return s.sys.RestartController() }

// After schedules fn at now+d on the deployment's clock.
func (s *System) After(d time.Duration, fn func()) { s.clk.AfterFunc(d, fn) }

// Shutdown powers every node off and stops the head-end.
func (s *System) Shutdown() { s.sys.Shutdown() }

// Wait blocks until the deployment is quiescent (all activity wound
// down after Shutdown).
func (s *System) Wait() { s.clk.Wait() }

// RunJob drives the deployment until the job completes, then shuts it
// down and returns the makespan. It is the one-shot convenience for
// simulated-time runs.
func (s *System) RunJob(h *JobHandle) (time.Duration, error) {
	h.OnComplete(func(time.Time) { s.Shutdown() })
	s.Wait()
	ms, ok := h.Makespan()
	if !ok {
		return 0, errors.New("oddci: job did not complete")
	}
	return ms, nil
}
