package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"time"

	"oddci/internal/dsmcc"
	"oddci/internal/federation"
	"oddci/internal/fleet"
	"oddci/internal/obs"
	"oddci/internal/simtime"
)

// fedConvRow is one convergence-scaling row: the same per-shard
// population and target at growing shard counts must converge in
// (nearly) the same simulated time — sharding the control plane buys
// capacity, not latency.
type fedConvRow struct {
	Shards          int     `json:"shards"`
	Population      int     `json:"population"`
	Target          int     `json:"target"`
	ConvergeSeconds float64 `json:"converge_seconds"`
	RatioToBaseline float64 `json:"ratio_to_baseline"`
	Wakeups         int     `json:"wakeups"`
	DuplicateWakeup int     `json:"duplicate_wakeups"`
	WallSeconds     float64 `json:"wall_seconds"`
}

// fedFailoverRow gates the journal failover path: kill one shard
// mid-ramp, rebuild it from its journal, and the federation must
// reconverge with zero duplicate wakeups and surviving busy members
// re-adopted by heartbeat.
type fedFailoverRow struct {
	Shards          int     `json:"shards"`
	Converged       bool    `json:"converged"`
	ConvergeSeconds float64 `json:"converge_seconds"`
	FailedOver      bool    `json:"failed_over"`
	ReadoptedBusy   int     `json:"readopted_busy"`
	DuplicateWakeup int     `json:"duplicate_wakeups"`
	WallSeconds     float64 `json:"wall_seconds"`
}

// fedFleetRow is the population-scale run: the SoA fleet engine with
// the consistent-hash shard overlay at 10⁶ PNAs, one shard killed and
// journal-recovered mid-ramp.
type fedFleetRow struct {
	Nodes            int     `json:"nodes"`
	Shards           int     `json:"shards"`
	MaxOwnershipSkew float64 `json:"max_ownership_skew"`
	WakeupBroadcasts int     `json:"wakeup_broadcasts"`
	Readopted        int     `json:"readopted"`
	PeakDownLag      int     `json:"peak_down_lag"`
	LostNodes        int     `json:"lost_nodes"`
	Validated        bool    `json:"validated"`
	WallSeconds      float64 `json:"wall_seconds"`
}

// fedCacheRow gates the shared chunk-cache seam: k shard carousels air
// the same image into one content-addressed store, so every shard
// after the first stages from cache — hit rate → (k−1)/k.
type fedCacheRow struct {
	Shards  int     `json:"shards"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

type federationBench struct {
	Convergence []fedConvRow   `json:"convergence"`
	Failover    fedFailoverRow `json:"failover"`
	Fleet       fedFleetRow    `json:"fleet"`
	SharedCache fedCacheRow    `json:"shared_cache"`
}

// Federation sweep gate bounds.
const (
	fedMaxConvRatio = 1.15 // convergence latency vs the 1-shard baseline
	fedMinHitRate   = 0.70 // shared-cache hit rate at 4 shards
)

func sweepFederation(w *csv.Writer, seed int64, outPath string) error {
	if err := w.Write([]string{
		"scenario", "shards", "nodes", "converge_s", "ratio", "wakeups",
		"dup_wakeups", "extra", "wall_s"}); err != nil {
		return err
	}

	var bench federationBench
	var firstViolation error
	violate := func(format string, a ...any) {
		if firstViolation == nil {
			firstViolation = fmt.Errorf(format, a...)
		}
	}

	// Convergence scaling: fixed per-shard population and target, shard
	// count 1 → 16. C = 10 s, so W ~ U(10 s, 20 s) and the analytic
	// quorum sits well inside the window.
	const (
		perShardPop    = 1024
		perShardTarget = 128
	)
	baseline := 0.0
	for _, shards := range []int{1, 2, 4, 8, 16} {
		dir, err := os.MkdirTemp("", "oddci-fed-bench")
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := federation.RunDriver(federation.DriverConfig{
			Shards:      shards,
			PerShardPop: perShardPop,
			TotalTarget: perShardTarget * shards,
			ImageBytes:  1_250_000, // C = 10 s at 1 Mbps
			Beta:        1e6,
			Seed:        seed,
			BaseDir:     dir,
			KillShard:   -1,
		})
		wall := time.Since(start).Seconds()
		os.RemoveAll(dir)
		if err != nil {
			return fmt.Errorf("federation convergence at %d shards: %w", shards, err)
		}
		if !res.Converged {
			violate("federation gate: %d shards never converged", shards)
		}
		if res.DuplicateWakeup != 0 {
			violate("federation gate: %d duplicate wakeups at %d shards", res.DuplicateWakeup, shards)
		}
		if shards == 1 {
			baseline = res.ConvergeSeconds
		}
		ratio := res.ConvergeSeconds / baseline
		if ratio > fedMaxConvRatio {
			violate("federation gate: convergence at %d shards is %.2f× the 1-shard baseline (max %.2f)",
				shards, ratio, fedMaxConvRatio)
		}
		bench.Convergence = append(bench.Convergence, fedConvRow{
			Shards: shards, Population: perShardPop * shards,
			Target:          perShardTarget * shards,
			ConvergeSeconds: res.ConvergeSeconds, RatioToBaseline: ratio,
			Wakeups: res.Wakeups, DuplicateWakeup: res.DuplicateWakeup,
			WallSeconds: wall,
		})
		if err := w.Write([]string{
			"convergence", strconv.Itoa(shards), strconv.Itoa(perShardPop * shards),
			f(res.ConvergeSeconds), f(ratio), strconv.Itoa(res.Wakeups),
			strconv.Itoa(res.DuplicateWakeup), "", f(wall)}); err != nil {
			return err
		}
		w.Flush()
	}

	// Journal failover: kill a shard at half fill, rebuild from its
	// journal 30 s later. Zero duplicate wakeups is the headline gate —
	// recovery re-adopts by heartbeat, never re-airs.
	dir, err := os.MkdirTemp("", "oddci-fed-bench")
	if err != nil {
		return err
	}
	start := time.Now()
	fres, err := federation.RunDriver(federation.DriverConfig{
		Shards:      4,
		PerShardPop: perShardPop,
		TotalTarget: perShardTarget * 4,
		ImageBytes:  1_250_000,
		Beta:        1e6,
		Seed:        seed + 1,
		BaseDir:     dir,
		KillShard:   1, KillAtFrac: 0.5, RecoverAfter: 30 * time.Second,
	})
	fwall := time.Since(start).Seconds()
	os.RemoveAll(dir)
	if err != nil {
		return fmt.Errorf("federation failover: %w", err)
	}
	if !fres.Converged || !fres.FailedOver {
		violate("federation gate: failover run converged=%v failedOver=%v", fres.Converged, fres.FailedOver)
	}
	if fres.DuplicateWakeup != 0 {
		violate("federation gate: %d duplicate wakeups across failover", fres.DuplicateWakeup)
	}
	if fres.ReadoptedBusy == 0 {
		violate("federation gate: failover re-adopted no busy members")
	}
	bench.Failover = fedFailoverRow{
		Shards: 4, Converged: fres.Converged, ConvergeSeconds: fres.ConvergeSeconds,
		FailedOver: fres.FailedOver, ReadoptedBusy: fres.ReadoptedBusy,
		DuplicateWakeup: fres.DuplicateWakeup, WallSeconds: fwall,
	}
	if err := w.Write([]string{
		"failover", "4", strconv.Itoa(perShardPop * 4), f(fres.ConvergeSeconds), "",
		strconv.Itoa(fres.Wakeups), strconv.Itoa(fres.DuplicateWakeup),
		"readopted=" + strconv.Itoa(fres.ReadoptedBusy), f(fwall)}); err != nil {
		return err
	}
	w.Flush()

	// Population scale: 16 shards over 10⁶ PNAs in the SoA engine, one
	// shard killed mid-ramp and recovered by journal failover.
	start = time.Now()
	sres, err := fleet.RunSharded(fleet.ShardedConfig{
		Config:    fleet.Config{Nodes: 1_000_000, Seed: seed},
		Shards:    16,
		KillShard: 5, KillAfter: 90 * time.Second, RecoverAfter: 60 * time.Second,
	})
	swall := time.Since(start).Seconds()
	if err != nil {
		return fmt.Errorf("sharded fleet: %w", err)
	}
	verr := sres.Validate()
	if verr != nil {
		violate("federation gate: sharded fleet: %v", verr)
	}
	bench.Fleet = fedFleetRow{
		Nodes: 1_000_000, Shards: 16,
		MaxOwnershipSkew: sres.MaxOwnershipSkew, WakeupBroadcasts: sres.WakeupBroadcasts,
		Readopted: sres.Readopted, PeakDownLag: sres.PeakDownLag, LostNodes: sres.LostNodes,
		Validated: verr == nil, WallSeconds: swall,
	}
	if err := w.Write([]string{
		"fleet", "16", "1000000", "", f(sres.MaxOwnershipSkew),
		strconv.Itoa(sres.WakeupBroadcasts), "0",
		"readopted=" + strconv.Itoa(sres.Readopted), f(swall)}); err != nil {
		return err
	}
	w.Flush()

	// Shared chunk cache: 4 shard carousels airing the identical image
	// into one store — shards 2..4 stage from cache.
	cache, err := fedSharedCacheScenario(seed)
	if err != nil {
		return err
	}
	if cache.HitRate < fedMinHitRate {
		violate("federation gate: shared-cache hit rate %.2f below %.2f", cache.HitRate, fedMinHitRate)
	}
	bench.SharedCache = cache
	if err := w.Write([]string{
		"shared_cache", strconv.Itoa(cache.Shards), "", "", f(cache.HitRate),
		"", "", fmt.Sprintf("hits=%d misses=%d", cache.Hits, cache.Misses), ""}); err != nil {
		return err
	}
	w.Flush()

	blob, err := json.MarshalIndent(&bench, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	return firstViolation
}

// fedSharedCacheScenario airs one image from 4 shard carousels into a
// shared content-addressed store and reports the aggregate hit rate.
func fedSharedCacheScenario(seed int64) (fedCacheRow, error) {
	const shards = 4
	row := fedCacheRow{Shards: shards}
	clk := simtime.NewSim(time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC))
	img := make([]byte, 1<<20)
	rand.New(rand.NewSource(seed)).Read(img)

	met := dsmcc.NewCacheMetrics(obs.NewRegistry())
	shared := dsmcc.NewChunkCache(8 << 20)
	shared.Instrument(met)

	for s := 0; s < shards; s++ {
		car, err := dsmcc.NewCarousel(uint16(0x300+s), 0)
		if err != nil {
			return row, err
		}
		b, err := dsmcc.NewBroadcaster(clk, car, 1e6)
		if err != nil {
			return row, err
		}
		if err := b.Start([]dsmcc.File{{Name: "image", Data: img}}); err != nil {
			return row, err
		}
		var fetchErr error
		b.RequestFileCached("image", shared, dsmcc.FileGranularity, func(data []byte, _ time.Time, err error) {
			if err != nil {
				fetchErr = err
			} else if !bytes.Equal(data, img) {
				fetchErr = fmt.Errorf("shard %d delivered corrupt image", s)
			}
		})
		clk.Wait()
		if fetchErr != nil {
			return row, fetchErr
		}
	}
	row.Hits, row.Misses = met.Hits(), met.Misses()
	if total := row.Hits + row.Misses; total > 0 {
		row.HitRate = float64(row.Hits) / float64(total)
	}
	return row, nil
}
