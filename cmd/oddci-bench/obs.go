package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"testing"

	"oddci/internal/span"
)

// obsOverheadLimit is the tracing overhead gate: with a collector
// attached but the head-based sampler saying no (SampleRate < 0), the
// task hand-off hot path must stay within this fraction of the
// untraced baseline — i.e. sampled-off tracing is noise, not a tax.
const obsOverheadLimit = 0.02

// obsBenchResult is one row of BENCH_obs.json.
type obsBenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// OverheadFrac is only set on the summary row: sampled-off ns/op
	// relative to the untraced baseline, minus one.
	OverheadFrac float64 `json:"overhead_frac,omitempty"`
}

// oneRound runs the hand-off benchmark once against a coordinator
// carrying the given collector.
func oneRound(spans *span.Collector) (obsBenchResult, error) {
	var failed atomic.Bool
	r := testing.Benchmark(benchTaskHandoffSpans(true, spans, &failed))
	if failed.Load() {
		return obsBenchResult{}, fmt.Errorf("obs bench: measurement invalidated")
	}
	if r.N == 0 || r.T <= 0 {
		return obsBenchResult{}, fmt.Errorf("obs bench: no iterations recorded")
	}
	return obsBenchResult{
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
	}, nil
}

// keepMin folds one round into the running best. A loopback hand-off
// is a ~17 µs syscall round trip, so single rounds wander by several
// percent; min-of-K converges on the true floor, and the caller
// interleaves baseline and sampled-off rounds so clock drift and
// thermal state hit both sides equally.
func keepMin(best *obsBenchResult, r obsBenchResult) {
	if best.Iterations == 0 || r.NsPerOp < best.NsPerOp {
		*best = r
	}
}

// sweepObs measures the tracing overhead gate: the binary task hand-off
// with a sampled-off collector versus the untraced baseline, in one
// process. Writes BENCH_obs.json (or -out) and fails when the
// sampled-off path regresses past obsOverheadLimit.
func sweepObs(w *csv.Writer, outPath string) error {
	if err := w.Write([]string{"bench", "iterations", "ns_per_op", "allocs_per_op", "overhead_frac"}); err != nil {
		return err
	}
	// Sampled-off: the collector is live and negotiates trace_ctx, but
	// every head-based draw loses — the hot path pays only the nil-span
	// checks, which is the deployment default worth guarding.
	offSpans := span.NewCollector(span.Config{Capacity: 4096, SampleRate: -1})
	const rounds = 6
	var base, off obsBenchResult
	for i := 0; i < rounds; i++ {
		r, err := oneRound(nil)
		if err != nil {
			return err
		}
		keepMin(&base, r)
		r, err = oneRound(offSpans)
		if err != nil {
			return err
		}
		keepMin(&off, r)
	}
	base.Name = "task_handoff_untraced"
	off.Name = "task_handoff_sampled_off"

	overhead := off.NsPerOp/base.NsPerOp - 1
	summary := obsBenchResult{Name: "overhead", OverheadFrac: overhead}
	results := []obsBenchResult{base, off, summary}
	for _, res := range results {
		if err := w.Write([]string{res.Name, fmt.Sprintf("%d", res.Iterations),
			f(res.NsPerOp), fmt.Sprintf("%d", res.AllocsPerOp), f(res.OverheadFrac)}); err != nil {
			return err
		}
	}
	if off.AllocsPerOp > base.AllocsPerOp {
		return fmt.Errorf("sampled-off tracing allocates on the hot path: %d allocs/op vs %d untraced",
			off.AllocsPerOp, base.AllocsPerOp)
	}
	if overhead > obsOverheadLimit {
		return fmt.Errorf("sampled-off tracing overhead %.2f%% exceeds the %.0f%% gate (%.1f ns/op vs %.1f ns/op)",
			overhead*100, obsOverheadLimit*100, off.NsPerOp, base.NsPerOp)
	}

	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	return os.WriteFile(outPath, blob, 0o644)
}
