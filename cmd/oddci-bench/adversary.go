package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"oddci/internal/core/backend"
	"oddci/internal/experiments"
	"oddci/internal/simtime"
)

// adversaryCell is one (fraction, replication, seed) deployment run of
// the byzantine scenario in BENCH_adversary.json.
type adversaryCell struct {
	Fraction          float64 `json:"fraction"`
	Replication       int     `json:"replication"`
	Seed              int64   `json:"seed"`
	Byzantine         int     `json:"byzantine_nodes"`
	ByzQuarantined    int     `json:"byzantine_quarantined"`
	HonestQuarantined int     `json:"honest_quarantined"`
	Committed         int     `json:"committed"`
	WrongCommits      int     `json:"wrong_commits"`
	Unresolved        int64   `json:"unresolved"`
	Conflicts         int64   `json:"conflicts"`
	Lies              int64   `json:"lies"`
	MakespanSec       float64 `json:"makespan_sec"`
}

// adversaryReport is the BENCH_adversary.json gate document.
type adversaryReport struct {
	Cells []adversaryCell `json:"cells"`
	// Dispatch throughput with credibility tracking armed versus the
	// plain baseline (best of 3 each): the honest-path overhead gate.
	BaselineOpsPerSec float64 `json:"baseline_ops_per_sec"`
	ArmedOpsPerSec    float64 `json:"armed_ops_per_sec"`
	ThroughputRatio   float64 `json:"throughput_ratio"`
}

// benchDispatchTracked mirrors benchDispatch with per-node credibility
// tracking armed — the only cost an all-honest deployment pays is the
// quarantine fast-path check on dispatch.
func benchDispatchTracked(starved *atomic.Bool) func(b *testing.B) {
	return func(b *testing.B) {
		const floor = 10_000
		be, err := backend.New(backend.Config{
			Clock: simtime.NewReal(), LeaseBase: time.Hour, TrackCredibility: true,
		})
		if err != nil {
			starved.Store(true)
			return
		}
		submitted := 0
		for submitted < b.N+floor {
			n := b.N + floor - submitted
			if n > 100_000 {
				n = 100_000
			}
			if _, err := be.Submit(backendJob(n)); err != nil {
				starved.Store(true)
				return
			}
			submitted += n
		}
		var nodeSeq atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			node := nodeSeq.Add(1)
			for pb.Next() {
				if _, ok := be.HandleRequest(&backend.TaskRequest{NodeID: node}).(*backend.TaskAssign); !ok {
					starved.Store(true)
					return
				}
			}
		})
	}
}

// onceOpsPerSec runs bench once and reports its throughput.
func onceOpsPerSec(bench func(*atomic.Bool) func(b *testing.B)) (float64, error) {
	var starved atomic.Bool
	r := testing.Benchmark(bench(&starved))
	if starved.Load() {
		return 0, fmt.Errorf("dispatch starved with pending backlog")
	}
	if r.N == 0 || r.T <= 0 {
		return 0, fmt.Errorf("no iterations recorded")
	}
	return float64(r.N) / r.T.Seconds(), nil
}

// abOpsPerSec interleaves baseline and armed runs (GC between each) and
// keeps the best of three per side: back-to-back pairs see the same
// heap, where sequential blocks would bias whichever side ran last.
func abOpsPerSec(baseline, armed func(*atomic.Bool) func(b *testing.B)) (baseBest, armedBest float64, err error) {
	for i := 0; i < 3; i++ {
		runtime.GC()
		base, err := onceOpsPerSec(baseline)
		if err != nil {
			return 0, 0, fmt.Errorf("baseline: %w", err)
		}
		runtime.GC()
		arm, err := onceOpsPerSec(armed)
		if err != nil {
			return 0, 0, fmt.Errorf("armed: %w", err)
		}
		baseBest = math.Max(baseBest, base)
		armedBest = math.Max(armedBest, arm)
	}
	return baseBest, armedBest, nil
}

// sweepAdversary runs the byzantine scenario grid (fraction ×
// replication × seed), measures the honest-path dispatch overhead of
// arming credibility tracking, writes BENCH_adversary.json, and
// enforces three gates: zero wrong commits at Replication 5 for every
// f ≤ 0.3 and seed, at least 95% of byzantine nodes quarantined in
// every adversarial cell, and armed dispatch throughput within 3% of
// the plain baseline.
func sweepAdversary(w *csv.Writer, seed int64, outPath string) error {
	if err := w.Write([]string{"fraction", "replication", "seed", "byzantine", "byz_quarantined",
		"honest_quarantined", "committed", "wrong_commits", "unresolved", "conflicts", "lies", "makespan_sec"}); err != nil {
		return err
	}
	seeds := []int64{seed, 4181, 9973}
	var rep adversaryReport
	for _, r := range []int{3, 5} {
		for _, frac := range []float64{0, 0.1, 0.2, 0.3} {
			for _, sd := range seeds {
				out, err := experiments.RunByzantineScenario(experiments.ByzantineScenario{
					Fraction: frac, Replication: r, Seed: sd,
				})
				if err != nil {
					return err
				}
				cell := adversaryCell{
					Fraction: frac, Replication: r, Seed: sd,
					Byzantine: out.Byzantine, ByzQuarantined: out.ByzQuarantined,
					HonestQuarantined: out.HonestQuarantined,
					Committed:         out.Committed, WrongCommits: out.WrongCommits,
					Unresolved: out.Unresolved, Conflicts: out.Conflicts, Lies: out.Lies,
					MakespanSec: out.Makespan.Seconds(),
				}
				rep.Cells = append(rep.Cells, cell)
				if err := w.Write([]string{f(frac), fmt.Sprintf("%d", r), fmt.Sprintf("%d", sd),
					fmt.Sprintf("%d", cell.Byzantine), fmt.Sprintf("%d", cell.ByzQuarantined),
					fmt.Sprintf("%d", cell.HonestQuarantined), fmt.Sprintf("%d", cell.Committed),
					fmt.Sprintf("%d", cell.WrongCommits), fmt.Sprintf("%d", cell.Unresolved),
					fmt.Sprintf("%d", cell.Conflicts), fmt.Sprintf("%d", cell.Lies),
					f(cell.MakespanSec)}); err != nil {
					return err
				}
				// Gate 1: at R=5 the quorum margin (3000 milli-credits vs
				// colluder groups capped at 2000) makes wrong commits
				// structurally impossible for these fractions.
				if r == 5 && cell.WrongCommits != 0 {
					return fmt.Errorf("adversary gate: %d wrong commits at R=5 f=%.2f seed=%d",
						cell.WrongCommits, frac, sd)
				}
				// Gate 2: the credibility/credential machinery must catch
				// at least 95% of the byzantine population.
				if cell.Byzantine > 0 && float64(cell.ByzQuarantined) < 0.95*float64(cell.Byzantine) {
					return fmt.Errorf("adversary gate: %d/%d byzantine nodes quarantined at R=%d f=%.2f seed=%d (<95%%)",
						cell.ByzQuarantined, cell.Byzantine, r, frac, sd)
				}
			}
		}
	}

	// Gate 3: arming credibility tracking must not cost the honest
	// dispatch path more than 3% (A/B on the same binary, best of 3).
	base, armed, err := abOpsPerSec(benchDispatch, benchDispatchTracked)
	if err != nil {
		return fmt.Errorf("adversary throughput bench: %w", err)
	}
	rep.BaselineOpsPerSec, rep.ArmedOpsPerSec = base, armed
	rep.ThroughputRatio = armed / base
	if err := w.Write([]string{"dispatch_baseline_ops_per_sec", f(base), "", "", "", "", "", "", "", "", "", ""}); err != nil {
		return err
	}
	if err := w.Write([]string{"dispatch_armed_ops_per_sec", f(armed), "", "", "", "", "", "", "", "", "", ""}); err != nil {
		return err
	}
	if rep.ThroughputRatio < 0.97 {
		return fmt.Errorf("adversary gate: armed dispatch at %.1f%% of baseline (floor 97%%)",
			rep.ThroughputRatio*100)
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	return os.WriteFile(outPath, blob, 0o644)
}
