package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"oddci/internal/fleet"
)

// fleetBenchResult is one row of BENCH_fleet.json: the cost of one
// fleet run at a given population, plus the cross-validation margins
// against the analytic model.
type fleetBenchResult struct {
	Nodes        int     `json:"nodes"`
	WallSeconds  float64 `json:"wall_seconds"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`

	SimEvents    uint64 `json:"sim_events"`
	WheelBatches uint64 `json:"wheel_batches"`
	NodeEvents   uint64 `json:"node_events"`
	Heartbeats   uint64 `json:"heartbeats"`

	AvailAtWake        int     `json:"avail_at_wake"`
	QuorumSimSeconds   float64 `json:"quorum_sim_seconds"`
	QuorumModelSeconds float64 `json:"quorum_model_seconds"`

	// MaxAvailErr and MaxRampErr are the worst |sim − model| across the
	// two validated curves, as a fraction of the acceptance tolerance
	// at that point: 1.0 is the gate boundary.
	MaxAvailErr float64 `json:"max_avail_err_frac_of_tol"`
	MaxRampErr  float64 `json:"max_ramp_err_frac_of_tol"`
	Validated   bool    `json:"validated"`
}

// peakRSSBytes reads the process's resident high-water mark from
// /proc/self/status (VmHWM); off Linux it falls back to the Go
// runtime's view of memory obtained from the OS. Note the HWM is
// process-wide and monotone, so with ascending populations each row
// reports the peak up to and including its own run — the largest run
// dominates, which is the number the gate cares about.
func peakRSSBytes() int64 {
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
				f := strings.Fields(rest)
				if len(f) >= 1 {
					if kb, err := strconv.ParseInt(f[0], 10, 64); err == nil {
						return kb << 10
					}
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

func maxErrFrac(pts []fleet.Point) float64 {
	worst := 0.0
	for _, p := range pts {
		if p.Tol <= 0 {
			continue
		}
		d := (p.Sim - p.Model) / p.Tol
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// sweepFleet runs the million-PNA harness at ascending populations,
// writes BENCH_fleet.json (or -out) as a regression gate, and mirrors
// the cost rows as CSV on stdout. The gate fails if any run's
// availability or ramp-up curve leaves its analytic bound, or the
// quorum time disagrees with the model's inversion (see
// fleet.Result.Validate for the exact tolerances).
func sweepFleet(w *csv.Writer, seed int64, outPath string) error {
	if err := w.Write([]string{
		"nodes", "wall_seconds", "peak_rss_mib", "sim_events", "wheel_batches",
		"node_events", "quorum_sim_s", "quorum_model_s", "max_ramp_err_frac"}); err != nil {
		return err
	}

	var results []fleetBenchResult
	var firstViolation error
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		start := time.Now()
		r, err := fleet.Run(fleet.Config{Nodes: n, Seed: seed})
		if err != nil {
			return err
		}
		wall := time.Since(start).Seconds()

		verr := r.Validate()
		if verr != nil && firstViolation == nil {
			firstViolation = fmt.Errorf("fleet gate at n=%d: %w", n, verr)
		}
		row := fleetBenchResult{
			Nodes:              n,
			WallSeconds:        wall,
			PeakRSSBytes:       peakRSSBytes(),
			SimEvents:          r.SimEvents,
			WheelBatches:       r.WheelBatches,
			NodeEvents:         r.NodeEvents,
			Heartbeats:         r.Heartbeats,
			AvailAtWake:        r.AvailAtWake,
			QuorumSimSeconds:   r.QuorumSimSeconds,
			QuorumModelSeconds: r.QuorumModelSeconds,
			MaxAvailErr:        maxErrFrac(r.Avail),
			MaxRampErr:         maxErrFrac(r.Ramp),
			Validated:          verr == nil,
		}
		results = append(results, row)

		if err := w.Write([]string{
			strconv.Itoa(n), f(wall), f(float64(row.PeakRSSBytes) / (1 << 20)),
			strconv.FormatUint(r.SimEvents, 10), strconv.FormatUint(r.WheelBatches, 10),
			strconv.FormatUint(r.NodeEvents, 10),
			f(r.QuorumSimSeconds), f(r.QuorumModelSeconds), f(row.MaxRampErr)}); err != nil {
			return err
		}
		w.Flush()
	}

	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	return firstViolation
}
