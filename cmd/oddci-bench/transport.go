package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/control"
	"oddci/internal/core/instance"
	"oddci/internal/span"
	"oddci/internal/transport"
)

// transportBenchResult is one row of BENCH_transport.json.
type transportBenchResult struct {
	Name              string  `json:"name"`
	Iterations        int     `json:"iterations"`
	NsPerOp           float64 `json:"ns_per_op"`
	OpsPerSec         float64 `json:"ops_per_sec"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	BytesPerOp        int64   `json:"bytes_per_op"`
	BroadcastEncodes  int64   `json:"broadcast_encodes,omitempty"`
	StagedBytes       int64   `json:"staged_bytes,omitempty"`
	StagedBytesPerSec float64 `json:"staged_bytes_per_sec,omitempty"`
}

func benchCoordinator(imageKB int, spans *span.Collector) (*transport.Coordinator, error) {
	img := &appimage.Image{
		Name: "bench", Version: 1, EntryPoint: "w",
		Payload: make([]byte, imageKB<<10),
	}
	coord, err := transport.NewCoordinator(transport.CoordinatorConfig{
		Listen: "127.0.0.1:0",
		Name:   "bench",
		Image:  img,
		Spans:  spans,
	})
	if err != nil {
		return nil, err
	}
	go coord.Serve()
	return coord, nil
}

// rawClient is a minimal bench-side node: it speaks the wire protocol
// directly so the measured loop contains exactly the frames under test.
type rawClient struct {
	conn net.Conn
	fr   *transport.FrameReader
	bw   *bufio.Writer
}

func (c *rawClient) Close() {
	c.fr.Close()
	c.conn.Close()
}

// dialAndStage completes the banner/hello/broadcast exchange and
// returns the connected client plus the staged payload bytes received.
func dialAndStage(addr string, nodeID uint64) (*rawClient, int, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, 0, err
	}
	fr := transport.NewFrameReader(conn)
	fail := func(err error) (*rawClient, int, error) {
		fr.Close()
		conn.Close()
		return nil, 0, err
	}
	t, payload, err := fr.Next()
	if err != nil {
		return fail(err)
	}
	if t != transport.FrameBanner {
		return fail(fmt.Errorf("first frame type %d, want banner", t))
	}
	var banner transport.Banner
	if err := json.Unmarshal(payload, &banner); err != nil {
		return fail(err)
	}
	if !banner.TaskBin {
		return fail(fmt.Errorf("coordinator does not advertise the binary task plane"))
	}
	bw := bufio.NewWriterSize(conn, 4<<10)
	hello, err := json.Marshal(&transport.Hello{NodeID: nodeID})
	if err != nil {
		return fail(err)
	}
	if err := transport.WriteFrame(bw, transport.FrameHello, hello); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	staged := 0
	var sawControl, sawImage bool
	for !sawControl || !sawImage {
		t, p, err := fr.Next()
		if err != nil {
			return fail(fmt.Errorf("staging read: %w", err))
		}
		staged += len(p)
		switch t {
		case transport.FrameControl:
			sawControl = true
		case transport.FrameImage:
			sawImage = true
		}
	}
	return &rawClient{conn: conn, fr: fr, bw: bw}, staged, nil
}

// stagingRun pushes the ~2 MB broadcast to n concurrent sessions and
// reports throughput plus the coordinator's encode counter — the
// paper's O(1)-in-N invariant shows up as that counter staying flat
// between the n=1 and n=100 rows.
func stagingRun(n int) (transportBenchResult, error) {
	var res transportBenchResult
	coord, err := benchCoordinator(2<<10, nil) // 2 MB image
	if err != nil {
		return res, err
	}
	defer coord.Close()

	staged := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, got, err := dialAndStage(coord.Addr(), uint64(i+1))
			if err != nil {
				errs[i] = err
				return
			}
			cl.Close()
			staged[i] = got
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	var total int64
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return res, fmt.Errorf("staging session %d: %w", i+1, errs[i])
		}
		total += int64(staged[i])
	}
	res = transportBenchResult{
		Name:              fmt.Sprintf("staging_n%d", n),
		Iterations:        n,
		NsPerOp:           float64(elapsed.Nanoseconds()) / float64(n),
		OpsPerSec:         float64(n) / elapsed.Seconds(),
		BroadcastEncodes:  coord.BroadcastEncodes(),
		StagedBytes:       total,
		StagedBytesPerSec: float64(total) / elapsed.Seconds(),
	}
	return res, nil
}

// benchHeartbeatRTT round-trips a pre-encoded heartbeat frame against a
// live session: one write + one pre-encoded reply per op.
func benchHeartbeatRTT(failed *atomic.Bool) func(b *testing.B) {
	return func(b *testing.B) {
		coord, err := benchCoordinator(32, nil)
		if err != nil {
			failed.Store(true)
			return
		}
		defer coord.Close()
		cl, _, err := dialAndStage(coord.Addr(), 1)
		if err != nil {
			failed.Store(true)
			return
		}
		defer cl.Close()
		hb := &control.Heartbeat{
			NodeID: 1, State: control.StateBusy, InstanceID: 1,
			Profile: instance.DeviceProfile{Class: instance.ClassSTB, MemMB: 256, CPUScore: 100},
			SentAt:  time.Now(),
		}
		frame, err := transport.AppendFrame(nil, transport.FrameHeartbeat, control.EncodeHeartbeat(hb))
		if err != nil {
			failed.Store(true)
			return
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.bw.Write(frame); err != nil {
				b.Fatal(err)
			}
			if err := cl.bw.Flush(); err != nil {
				b.Fatal(err)
			}
			t, _, err := cl.fr.Next()
			if err != nil {
				b.Fatal(err)
			}
			if t != transport.FrameHeartbeatReply {
				failed.Store(true)
				return
			}
		}
	}
}

// benchTaskHandoff measures one full hand-off per op — request,
// assign, result — over real loopback TCP. The binary variant mirrors
// the fast-path node (prebuilt request frame, reused buffers); the JSON
// variant mirrors a pre-fast-path node (per-op marshal/unmarshal).
// testing.Benchmark's alloc counters are process-wide, so both sides of
// each hand-off are in the numbers.
func benchTaskHandoff(binaryPlane bool, failed *atomic.Bool) func(b *testing.B) {
	return benchTaskHandoffSpans(binaryPlane, nil, failed)
}

// benchTaskHandoffSpans is benchTaskHandoff against a coordinator with
// the given span collector — the obs sweep's overhead probe (nil for
// the untraced baseline, a sampled-off collector for the gate).
func benchTaskHandoffSpans(binaryPlane bool, spans *span.Collector, failed *atomic.Bool) func(b *testing.B) {
	return func(b *testing.B) {
		coord, err := benchCoordinator(32, spans)
		if err != nil {
			failed.Store(true)
			return
		}
		defer coord.Close()
		// Keep a floor of backlog beyond b.N so the dispatcher never
		// comes up empty mid-measurement.
		const floor = 10_000
		total := b.N + floor
		submitted := 0
		for submitted < total {
			n := total - submitted
			if n > 100_000 {
				n = 100_000
			}
			if _, err := coord.Backend().Submit(backendJob(n)); err != nil {
				failed.Store(true)
				return
			}
			submitted += n
		}
		cl, _, err := dialAndStage(coord.Addr(), 1)
		if err != nil {
			failed.Store(true)
			return
		}
		defer cl.Close()
		var reqFrame, wbuf []byte
		if binaryPlane {
			reqFrame = transport.BeginFrame(nil, transport.FrameTaskRequestBin)
			reqFrame = transport.AppendTaskRequest(reqFrame, &transport.TaskRequestMsg{NodeID: 1})
			if reqFrame, err = transport.EndFrame(reqFrame, 0); err != nil {
				failed.Store(true)
				return
			}
		}
		var assign transport.TaskAssignMsg
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if binaryPlane {
				_, err = cl.bw.Write(reqFrame)
			} else {
				var raw []byte
				if raw, err = json.Marshal(&transport.TaskRequestMsg{NodeID: 1}); err == nil {
					err = transport.WriteFrame(cl.bw, transport.FrameTaskRequest, raw)
				}
			}
			if err != nil {
				b.Fatal(err)
			}
			if err := cl.bw.Flush(); err != nil {
				b.Fatal(err)
			}
			t, payload, err := cl.fr.Next()
			if err != nil {
				b.Fatal(err)
			}
			switch t {
			case transport.FrameTaskAssignBin:
				err = transport.DecodeTaskAssign(payload, &assign)
			case transport.FrameTaskAssign:
				assign = transport.TaskAssignMsg{}
				err = json.Unmarshal(payload, &assign)
			default:
				// NoTask with backlog pending invalidates the run.
				failed.Store(true)
				return
			}
			if err != nil {
				b.Fatal(err)
			}
			res := transport.TaskResultMsg{NodeID: 1, JobID: assign.JobID, TaskID: assign.TaskID}
			if binaryPlane {
				wbuf = transport.BeginFrame(wbuf[:0], transport.FrameTaskResultBin)
				wbuf = transport.AppendTaskResult(wbuf, &res)
				if wbuf, err = transport.EndFrame(wbuf, 0); err != nil {
					b.Fatal(err)
				}
				_, err = cl.bw.Write(wbuf)
			} else {
				var raw []byte
				if raw, err = json.Marshal(&res); err == nil {
					err = transport.WriteFrame(cl.bw, transport.FrameTaskResult, raw)
				}
			}
			if err != nil {
				b.Fatal(err)
			}
			if err := cl.bw.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// sweepTransport benchmarks the transport fast path over loopback TCP,
// writes BENCH_transport.json (or -out) as a regression gate, and
// mirrors the numbers as CSV on stdout. Two invariants are enforced
// in-process: the broadcast encode counter must stay flat from 1 to
// 100 staging sessions, and the binary task plane must cut allocs per
// hand-off at least 2× versus the JSON baseline measured in the same
// run.
func sweepTransport(w *csv.Writer, outPath string) error {
	if err := w.Write([]string{"bench", "iterations", "ns_per_op", "ops_per_sec",
		"allocs_per_op", "bytes_per_op", "broadcast_encodes", "staged_bytes_per_sec"}); err != nil {
		return err
	}
	var results []transportBenchResult
	emit := func(res transportBenchResult) error {
		results = append(results, res)
		return w.Write([]string{res.Name, fmt.Sprintf("%d", res.Iterations),
			f(res.NsPerOp), f(res.OpsPerSec),
			fmt.Sprintf("%d", res.AllocsPerOp), fmt.Sprintf("%d", res.BytesPerOp),
			fmt.Sprintf("%d", res.BroadcastEncodes), f(res.StagedBytesPerSec)})
	}

	var encodes [2]int64
	for i, n := range []int{1, 100} {
		res, err := stagingRun(n)
		if err != nil {
			return err
		}
		encodes[i] = res.BroadcastEncodes
		if err := emit(res); err != nil {
			return err
		}
	}
	if encodes[0] != encodes[1] {
		return fmt.Errorf("broadcast encodes not flat in session count: %d at n=1 vs %d at n=100",
			encodes[0], encodes[1])
	}

	benches := []struct {
		name string
		fn   func(*atomic.Bool) func(b *testing.B)
	}{
		{"heartbeat_rtt", benchHeartbeatRTT},
		{"task_handoff_binary", func(f *atomic.Bool) func(*testing.B) { return benchTaskHandoff(true, f) }},
		{"task_handoff_json", func(f *atomic.Bool) func(*testing.B) { return benchTaskHandoff(false, f) }},
	}
	byName := map[string]transportBenchResult{}
	for _, bench := range benches {
		var failed atomic.Bool
		r := testing.Benchmark(bench.fn(&failed))
		if failed.Load() {
			return fmt.Errorf("transport bench %s: measurement invalidated (setup failure or starved dispatch)", bench.name)
		}
		if r.N == 0 || r.T <= 0 {
			return fmt.Errorf("transport bench %s: no iterations recorded", bench.name)
		}
		res := transportBenchResult{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			OpsPerSec:   float64(r.N) / r.T.Seconds(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		byName[res.Name] = res
		if err := emit(res); err != nil {
			return err
		}
	}
	bin, js := byName["task_handoff_binary"], byName["task_handoff_json"]
	if js.AllocsPerOp < 2*bin.AllocsPerOp {
		return fmt.Errorf("binary task plane saves too little: %d allocs/op vs %d JSON (want >= 2x)",
			bin.AllocsPerOp, js.AllocsPerOp)
	}

	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	return os.WriteFile(outPath, blob, 0o644)
}
