package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"oddci/internal/core/backend"
	"oddci/internal/simtime"
	"oddci/internal/workload"
)

// backendBenchResult is one row of BENCH_backend.json.
type backendBenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func backendJob(n int) *workload.Job {
	tasks := make([]workload.Task, n)
	for i := range tasks {
		tasks[i] = workload.Task{ID: i, InputBytes: 64, OutputBytes: 32, STBSeconds: 1}
	}
	return &workload.Job{Name: "bench", Tasks: tasks}
}

// backendUnderTest builds a real-clock backend with tasks queued,
// submitted as jobs of at most 100k tasks each.
func backendUnderTest(tasks int) (*backend.Backend, error) {
	be, err := backend.New(backend.Config{Clock: simtime.NewReal(), LeaseBase: time.Hour})
	if err != nil {
		return nil, err
	}
	submitted := 0
	for submitted < tasks {
		n := tasks - submitted
		if n > 100_000 {
			n = 100_000
		}
		if _, err := be.Submit(backendJob(n)); err != nil {
			return nil, err
		}
		submitted += n
	}
	return be, nil
}

// The three harnesses mirror the Benchmark* functions in
// internal/core/backend/bench_test.go so `go test -bench` and this
// command report the same paths. starved flags a dispatch that came up
// empty despite a pending backlog, which invalidates the measurement.

func benchDispatch(starved *atomic.Bool) func(b *testing.B) {
	return func(b *testing.B) {
		const floor = 10_000
		be, err := backendUnderTest(b.N + floor)
		if err != nil {
			starved.Store(true)
			return
		}
		var nodeSeq atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			node := nodeSeq.Add(1)
			for pb.Next() {
				if _, ok := be.HandleRequest(&backend.TaskRequest{NodeID: node}).(*backend.TaskAssign); !ok {
					starved.Store(true)
					return
				}
			}
		})
	}
}

func benchResult(starved *atomic.Bool) func(b *testing.B) {
	return func(b *testing.B) {
		be, err := backendUnderTest(b.N)
		if err != nil {
			starved.Store(true)
			return
		}
		assigns := make([]*backend.TaskAssign, 0, b.N)
		for i := 0; i < b.N; i++ {
			a, ok := be.HandleRequest(&backend.TaskRequest{NodeID: uint64(i%4096 + 1)}).(*backend.TaskAssign)
			if !ok {
				starved.Store(true)
				return
			}
			assigns = append(assigns, a)
		}
		var next atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := next.Add(1) - 1
				a := assigns[i]
				be.HandleResult(&backend.TaskResult{NodeID: uint64(i%4096 + 1),
					JobID: a.JobID, TaskID: a.TaskID, Payload: []byte("r")})
			}
		})
	}
}

func benchEndToEnd(starved *atomic.Bool) func(b *testing.B) {
	return func(b *testing.B) {
		be, err := backendUnderTest(((b.N / 100_000) + 1) * 100_000)
		if err != nil {
			starved.Store(true)
			return
		}
		var nodeSeq atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			node := nodeSeq.Add(1)
			for pb.Next() {
				a, ok := be.HandleRequest(&backend.TaskRequest{NodeID: node}).(*backend.TaskAssign)
				if !ok {
					starved.Store(true)
					return
				}
				be.HandleResult(&backend.TaskResult{NodeID: node, JobID: a.JobID,
					TaskID: a.TaskID, Payload: []byte("r")})
			}
		})
	}
}

// sweepBackend benchmarks the scheduler hot paths, writes
// BENCH_backend.json (or -out) for regression tracking, and mirrors the
// numbers as CSV on stdout like the other sweeps.
func sweepBackend(w *csv.Writer, outPath string) error {
	if err := w.Write([]string{"bench", "ns_per_op", "ops_per_sec", "allocs_per_op", "bytes_per_op"}); err != nil {
		return err
	}
	benches := []struct {
		name string
		fn   func(*atomic.Bool) func(b *testing.B)
	}{
		{"dispatch_parallel_10k_backlog", benchDispatch},
		{"result_parallel", benchResult},
		{"e2e_throughput_100k", benchEndToEnd},
	}
	var results []backendBenchResult
	for _, bench := range benches {
		var starved atomic.Bool
		r := testing.Benchmark(bench.fn(&starved))
		if starved.Load() {
			return fmt.Errorf("backend bench %s: dispatch starved with pending backlog", bench.name)
		}
		if r.N == 0 || r.T <= 0 {
			return fmt.Errorf("backend bench %s: no iterations recorded", bench.name)
		}
		res := backendBenchResult{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			OpsPerSec:   float64(r.N) / r.T.Seconds(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		results = append(results, res)
		row := []string{res.Name, f(res.NsPerOp), f(res.OpsPerSec),
			fmt.Sprintf("%d", res.AllocsPerOp), fmt.Sprintf("%d", res.BytesPerOp)}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	return os.WriteFile(outPath, blob, 0o644)
}
