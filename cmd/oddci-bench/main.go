// Command oddci-bench emits machine-readable CSV sweeps of the core
// models, for plotting or regression tracking:
//
//	oddci-bench -sweep fig6  > fig6.csv
//	oddci-bench -sweep fig7  > fig7.csv
//	oddci-bench -sweep table1 > table1.csv
//	oddci-bench -sweep churn  > churn.csv
//
// The backend sweep instead benchmarks the scheduler hot paths
// (dispatch, result commit, end-to-end round trips) and writes a JSON
// regression gate with ops/sec and allocs/op per path, mirrored as CSV
// on stdout:
//
//	oddci-bench -sweep backend -out BENCH_backend.json
//
// The transport sweep benchmarks the TCP fast path over loopback
// (broadcast staging, heartbeat round trips, task hand-offs in both
// codecs) and enforces two invariants: the broadcast encode counter
// stays flat from 1 to 100 sessions, and the binary task plane cuts
// allocs per hand-off at least 2x versus the JSON baseline:
//
//	oddci-bench -sweep transport -out BENCH_transport.json
//
// The fleet sweep drives the million-PNA simulation harness
// (internal/fleet) through wakeup→quorum at populations from 10³ to
// 10⁶, recording wall clock, peak RSS, and event counts per run, and
// fails if any run's availability or ramp-up curve leaves its analytic
// tolerance:
//
//	oddci-bench -sweep fleet -out BENCH_fleet.json
//
// The obs sweep is the tracing overhead gate: it measures the binary
// task hand-off against a coordinator carrying a sampled-off span
// collector versus the untraced baseline, and fails if the sampled-off
// hot path regresses more than 2% or allocates:
//
//	oddci-bench -sweep obs -out BENCH_obs.json
//
// The adversary sweep runs full byzantine deployments (fraction ×
// replication × seed) against the credibility-weighted quorum and gates
// on zero wrong commits at Replication 5, ≥95% byzantine quarantine,
// and armed dispatch throughput within 3% of baseline:
//
//	oddci-bench -sweep adversary -out BENCH_adversary.json
//
// The image sweep gates the content-addressed delta distribution path:
// a 16-module carousel re-airs 1/16, 1/4 and full deltas (re-air wire
// bytes must stay ≤1.25× the changed payload, warm receivers converge
// from the delta alone, legacy receivers converge from lossy full
// cycles), and transport staging encodes must be flat from 1 to 16
// sessions with a one-chunk UpdateImage costing exactly one re-encoded
// chunk:
//
//	oddci-bench -sweep image -out BENCH_image.json
//
// The federation sweep gates the sharded control plane: convergence
// latency at 1→16 consistent-hash coordinator shards (fixed per-shard
// population) must stay within 1.15× the single-shard baseline; a
// kill-one-shard run must fail over from its journal and reconverge
// with zero duplicate wakeups; the SoA fleet engine re-runs the claim
// at 10⁶ PNAs with a mid-ramp kill/recover; and four shard carousels
// airing one image through a shared chunk cache must hit on every
// shard after the first:
//
//	oddci-bench -sweep federation -out BENCH_federation.json
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"time"

	"oddci/internal/analytic"
	"oddci/internal/baseline"
	"oddci/internal/sim"
)

func main() {
	var (
		sweep = flag.String("sweep", "fig6", "one of fig6, fig7, table1, churn, backend, transport, fleet, obs, adversary, image, federation")
		seed  = flag.Int64("seed", 2009, "random seed")
		nodes = flag.Int("nodes", 200, "DES population for validated sweeps")
		out   = flag.String("out", "", "output file for the backend/transport sweeps' JSON gate (default BENCH_<sweep>.json)")
	)
	flag.Parse()
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	var err error
	switch *sweep {
	case "fig6", "fig7":
		err = sweepFig(w, *sweep, *seed, *nodes)
	case "table1":
		err = sweepTable1(w)
	case "churn":
		err = sweepChurn(w, *seed, *nodes)
	case "backend":
		if *out == "" {
			*out = "BENCH_backend.json"
		}
		err = sweepBackend(w, *out)
	case "transport":
		if *out == "" {
			*out = "BENCH_transport.json"
		}
		err = sweepTransport(w, *out)
	case "fleet":
		if *out == "" {
			*out = "BENCH_fleet.json"
		}
		err = sweepFleet(w, *seed, *out)
	case "obs":
		if *out == "" {
			*out = "BENCH_obs.json"
		}
		err = sweepObs(w, *out)
	case "adversary":
		if *out == "" {
			*out = "BENCH_adversary.json"
		}
		err = sweepAdversary(w, *seed, *out)
	case "image":
		if *out == "" {
			*out = "BENCH_image.json"
		}
		err = sweepImage(w, *seed, *out)
	case "federation":
		if *out == "" {
			*out = "BENCH_federation.json"
		}
		err = sweepFederation(w, *seed, *out)
	default:
		err = fmt.Errorf("unknown sweep %q", *sweep)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

func sweepFig(w *csv.Writer, which string, seed int64, nodes int) error {
	if err := w.Write([]string{"ratio", "phi", "analytic", "des"}); err != nil {
		return err
	}
	for _, ratio := range []float64{1, 10, 100, 1000} {
		for e := 0.0; e <= 5.0; e += 0.5 {
			phi := math.Pow(10, e)
			p := analytic.Figure6Defaults(ratio, float64(nodes)).WithPhi(phi)
			res, err := sim.RunJob(sim.JobConfig{
				Nodes:        nodes,
				Tasks:        int(ratio) * nodes,
				ImageBytes:   int64(p.ImageBits / 8),
				Beta:         p.Beta,
				Delta:        p.Delta,
				TaskInBytes:  int(p.TaskInBits / 8),
				TaskOutBytes: int(p.TaskOutBits / 8),
				TaskSeconds:  p.TaskSeconds,
				Seed:         seed,
			})
			if err != nil {
				return err
			}
			var ana, des float64
			if which == "fig6" {
				ana, des = p.Efficiency(), res.Efficiency
			} else {
				ana, des = p.Makespan(), res.Makespan.Seconds()
			}
			if err := w.Write([]string{f(ratio), f(phi), f(ana), f(des)}); err != nil {
				return err
			}
		}
	}
	return nil
}

func sweepTable1(w *csv.Writer) error {
	if err := w.Write([]string{"n", "oddci", "grid", "iaas", "multicast"}); err != nil {
		return err
	}
	const img = 8 << 20
	oddci := baseline.OddCI{ImageBytes: img, BetaBps: 1e6}
	grid := baseline.Unicast{ImageBytes: img, UplinkBps: 1e9, DeltaBps: 10e6}
	iaas := baseline.IaaS{ImageBytes: img, DeltaBps: 1e9, Boot: 2 * time.Minute, Concurrency: 100}
	tree := baseline.MulticastTree{ImageBytes: img, DeltaBps: 10e6, Fanout: 8}
	for n := 10; n <= 10_000_000; n *= 10 {
		ro, err := oddci.Analytic(n)
		if err != nil {
			return err
		}
		rg, err := grid.Analytic(n)
		if err != nil {
			return err
		}
		ri, err := iaas.Analytic(n)
		if err != nil {
			return err
		}
		rm, err := tree.Analytic(n)
		if err != nil {
			return err
		}
		row := []string{strconv.Itoa(n), f(ro.Last.Seconds()), f(rg.Last.Seconds()),
			f(ri.Last.Seconds()), f(rm.Last.Seconds())}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

func sweepChurn(w *csv.Writer, seed int64, nodes int) error {
	if err := w.Write([]string{"mean_on_min", "phi", "efficiency", "tasks_lost", "departures"}); err != nil {
		return err
	}
	for _, onMin := range []int{10, 20, 30, 60, 120, 240} {
		for _, phi := range []float64{100, 1000, 10000} {
			p := analytic.Figure6Defaults(20, float64(nodes)).WithPhi(phi)
			res, err := sim.RunChurnJob(sim.ChurnJobConfig{
				JobConfig: sim.JobConfig{
					Nodes:        nodes,
					Tasks:        20 * nodes,
					ImageBytes:   int64(p.ImageBits / 8),
					Beta:         p.Beta,
					Delta:        p.Delta,
					TaskInBytes:  int(p.TaskInBits / 8),
					TaskOutBytes: int(p.TaskOutBits / 8),
					TaskSeconds:  p.TaskSeconds,
					Seed:         seed,
				},
				MeanOn:  time.Duration(onMin) * time.Minute,
				MeanOff: 5 * time.Minute,
			})
			if err != nil {
				return err
			}
			row := []string{strconv.Itoa(onMin), f(phi), f(res.Efficiency),
				strconv.Itoa(res.TasksLost), strconv.Itoa(res.Departures)}
			if err := w.Write(row); err != nil {
				return err
			}
		}
	}
	return nil
}
