package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"

	"bytes"

	"oddci/internal/appimage"
	"oddci/internal/dsmcc"
	"oddci/internal/obs"
	"oddci/internal/transport"
	"oddci/internal/workload"
)

// The image sweep gates the content-addressed delta distribution path
// end to end:
//
//   - dsmcc: a 16-module × 64 KiB carousel re-airs 1/16, 1/4 and full
//     deltas; the delta wire cost must stay within 1.25× the changed
//     payload bytes (TS packetization plus the directory are the only
//     overhead), a cache-warm receiver must converge from the delta
//     alone, and a hash-unaware legacy receiver must still converge
//     from full cycles under injected section loss.
//   - transport: staging encodes must be flat in the session count, and
//     an UpdateImage must cost exactly the three per-update artifacts
//     plus the changed chunk frames — identically at 1 and 16 sessions.

const (
	imageBenchModules    = 16
	imageBenchModuleSize = 64 << 10
)

type imageDeltaRow struct {
	ChangedModules int     `json:"changed_modules"`
	ChangedBytes   int64   `json:"changed_bytes"`
	DeltaWireBytes int64   `json:"delta_wire_bytes"`
	FullWireBytes  int64   `json:"full_wire_bytes"`
	Ratio          float64 `json:"ratio"`
	Savings        float64 `json:"savings"`
	WarmConverged  bool    `json:"warm_converged"`
	CacheHits      int64   `json:"cache_hits"`
	LegacyCycles   int     `json:"legacy_cycles_under_loss"`
}

type imageStageRow struct {
	Sessions      int   `json:"sessions"`
	JoinEncodes   int64 `json:"join_encodes"`
	UpdateEncodes int64 `json:"update_encodes"`
	Restages      int   `json:"restages"`
}

type imageBenchReport struct {
	MaxRatio float64         `json:"max_ratio_allowed"`
	Delta    []imageDeltaRow `json:"delta"`
	Staging  []imageStageRow `json:"staging"`
	Pass     bool            `json:"pass"`
}

func sweepImage(w *csv.Writer, seed int64, out string) error {
	report := imageBenchReport{MaxRatio: 1.25}

	if err := w.Write([]string{"section", "sessions_or_changed", "changed_bytes",
		"delta_wire_bytes", "full_wire_bytes", "ratio", "detail"}); err != nil {
		return err
	}
	for _, k := range []int{1, 4, 16} {
		row, err := imageDeltaCase(seed, k)
		if err != nil {
			return err
		}
		report.Delta = append(report.Delta, row)
		if err := w.Write([]string{"dsmcc", strconv.Itoa(k),
			strconv.FormatInt(row.ChangedBytes, 10),
			strconv.FormatInt(row.DeltaWireBytes, 10),
			strconv.FormatInt(row.FullWireBytes, 10),
			f(row.Ratio),
			fmt.Sprintf("cache_hits=%d legacy_cycles=%d", row.CacheHits, row.LegacyCycles)}); err != nil {
			return err
		}
	}

	for _, sessions := range []int{1, 16} {
		row, err := imageStageCase(seed, sessions)
		if err != nil {
			return err
		}
		report.Staging = append(report.Staging, row)
		if err := w.Write([]string{"transport", strconv.Itoa(sessions), "", "", "", "",
			fmt.Sprintf("join_encodes=%d update_encodes=%d restages=%d",
				row.JoinEncodes, row.UpdateEncodes, row.Restages)}); err != nil {
			return err
		}
	}
	w.Flush()

	// Gates. Fail in-process so CI catches a regression without parsing
	// the JSON.
	report.Pass = true
	var fail error
	for _, r := range report.Delta {
		if r.Ratio > report.MaxRatio {
			report.Pass = false
			fail = fmt.Errorf("image gate: delta of %d modules costs %d wire bytes for %d changed bytes (ratio %.3f > %.2f)",
				r.ChangedModules, r.DeltaWireBytes, r.ChangedBytes, r.Ratio, report.MaxRatio)
		}
		if !r.WarmConverged {
			report.Pass = false
			fail = fmt.Errorf("image gate: warm receiver failed to converge from a %d-module delta", r.ChangedModules)
		}
		if r.LegacyCycles <= 0 {
			report.Pass = false
			fail = fmt.Errorf("image gate: legacy receiver never converged under loss (delta of %d modules)", r.ChangedModules)
		}
	}
	first := report.Staging[0]
	for _, r := range report.Staging {
		if r.JoinEncodes != first.JoinEncodes || r.UpdateEncodes != first.UpdateEncodes {
			report.Pass = false
			fail = fmt.Errorf("image gate: staging encodes not flat in session count: %d sessions cost join=%d update=%d, %d sessions cost join=%d update=%d",
				first.Sessions, first.JoinEncodes, first.UpdateEncodes,
				r.Sessions, r.JoinEncodes, r.UpdateEncodes)
		}
	}

	raw, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	if fail != nil {
		return fail
	}
	fmt.Fprintf(os.Stderr, "image sweep: gates passed, wrote %s\n", out)
	return nil
}

// imageDeltaCase measures one carousel delta re-air with k changed
// modules and proves both receiver generations assemble correctly.
func imageDeltaCase(seed int64, k int) (imageDeltaRow, error) {
	row := imageDeltaRow{ChangedModules: k}
	rng := rand.New(rand.NewSource(seed))
	c, err := dsmcc.NewCarousel(0x420, 0)
	if err != nil {
		return row, err
	}
	files := make([]dsmcc.File, imageBenchModules)
	for i := range files {
		data := make([]byte, imageBenchModuleSize)
		rng.Read(data)
		files[i] = dsmcc.File{Name: fmt.Sprintf("m%02d", i), Data: data}
	}
	if err := c.SetFiles(files); err != nil {
		return row, err
	}
	full, err := c.EncodeCycle()
	if err != nil {
		return row, err
	}

	// Warm up a hash-aware receiver (and its chunk cache) on gen 1.
	cache := dsmcc.NewChunkCache(64 << 20)
	warm := dsmcc.NewReceiver()
	warm.SetCache(cache)
	for _, s := range full {
		warm.HandleSection(s)
	}
	for _, f := range files {
		if got, ok := warm.File(f.Name); !ok || len(got) != len(f.Data) {
			return row, fmt.Errorf("warm receiver failed to assemble %s at gen 1", f.Name)
		}
	}

	// Mutate k modules and re-air only the delta.
	for i := 0; i < k; i++ {
		data := make([]byte, imageBenchModuleSize)
		rng.Read(data)
		files[i] = dsmcc.File{Name: files[i].Name, Data: data}
	}
	if err := c.SetFiles(files); err != nil {
		return row, err
	}
	layout, err := c.Layout()
	if err != nil {
		return row, err
	}
	row.ChangedBytes = int64(k) * imageBenchModuleSize
	row.DeltaWireBytes = layout.DeltaWire
	row.FullWireBytes = layout.CycleWire
	row.Ratio = float64(row.DeltaWireBytes) / float64(row.ChangedBytes)
	row.Savings = 1 - float64(row.DeltaWireBytes)/float64(row.FullWireBytes)

	delta, err := c.EncodeDeltaCycle()
	if err != nil {
		return row, err
	}
	// The receiver that followed gen 1 converges from the delta alone;
	// so does a cold receiver sharing only the warm chunk cache.
	met := dsmcc.NewCacheMetrics(obs.NewRegistry())
	cache.Instrument(met)
	cold := dsmcc.NewReceiver()
	cold.SetCache(cache)
	for _, s := range delta {
		warm.HandleSection(s)
		cold.HandleSection(s)
	}
	row.WarmConverged = true
	for _, f := range files {
		for _, r := range []*dsmcc.Receiver{warm, cold} {
			got, ok := r.File(f.Name)
			if !ok || !bytes.Equal(got, f.Data) {
				row.WarmConverged = false
			}
		}
	}
	row.CacheHits = met.Hits()

	// Mixed-version interop under fault injection: a hash-unaware
	// receiver ignores the delta plane and converges from lossy full
	// cycles instead.
	legacy := dsmcc.NewReceiver()
	legacy.DisableHashes = true
	for _, s := range delta {
		legacy.HandleSection(s) // cold: the delta alone cannot complete it
	}
	lossRng := rand.New(rand.NewSource(seed + 1))
	for cycle := 1; cycle <= 20; cycle++ {
		secs, err := c.EncodeCycle()
		if err != nil {
			return row, err
		}
		for _, s := range secs {
			if lossRng.Float64() < 0.2 {
				continue // injected section loss
			}
			legacy.HandleSection(s)
		}
		done := true
		for _, f := range files {
			got, ok := legacy.File(f.Name)
			if !ok || !bytes.Equal(got, f.Data) {
				done = false
				break
			}
		}
		if done {
			row.LegacyCycles = cycle
			break
		}
	}
	return row, nil
}

// imageStageCase serves n full node sessions from one coordinator, then
// updates one 64 KiB chunk of the staged image, and reports the encode
// cost of each phase. Both must be independent of n.
func imageStageCase(seed int64, n int) (imageStageRow, error) {
	row := imageStageRow{Sessions: n}
	payload := make([]byte, imageBenchModules*imageBenchModuleSize)
	rand.New(rand.NewSource(seed)).Read(payload)
	img := &appimage.Image{Name: "bench", Version: 1, EntryPoint: "w",
		Payload: append([]byte(nil), payload...)}
	coord, err := transport.NewCoordinator(transport.CoordinatorConfig{
		Listen:          "127.0.0.1:0",
		Name:            "image-bench",
		Image:           img,
		ImageChunkBytes: imageBenchModuleSize,
	})
	if err != nil {
		return row, err
	}
	defer coord.Close()
	go coord.Serve()
	construction := coord.BroadcastEncodes()

	g := workload.Generator{Name: "image-bench", Tasks: 2 * n,
		InputBytes: 64, OutputBytes: 64, MeanSeconds: 0.5}
	job, err := g.Generate()
	if err != nil {
		return row, err
	}
	if _, err := coord.Submit(job); err != nil {
		return row, err
	}
	var wg sync.WaitGroup
	reports := make([]transport.NodeReport, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[i], errs[i] = transport.RunNode(transport.NodeConfig{
				Addr: coord.Addr(), NodeID: uint64(i + 1),
				TimeScale: 1000, Seed: seed, PinnedKey: coord.PublicKey(),
			})
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return row, fmt.Errorf("node %d: %w", i+1, errs[i])
		}
		if !reports[i].Joined || !reports[i].DeltaImage {
			return row, fmt.Errorf("node %d did not join over the delta plane: %+v", i+1, reports[i])
		}
		row.Restages += reports[i].Restages
	}
	row.JoinEncodes = coord.BroadcastEncodes() - construction // must be 0

	// One-chunk recompose: flip bytes inside a single 64 KiB chunk.
	img2 := &appimage.Image{Name: "bench", Version: 1, EntryPoint: "w",
		Payload: append([]byte(nil), payload...)}
	for i := 0; i < 128; i++ {
		img2.Payload[5*imageBenchModuleSize+i] ^= 0xFF
	}
	before := coord.BroadcastEncodes()
	if err := coord.UpdateImage(img2); err != nil {
		return row, err
	}
	row.UpdateEncodes = coord.BroadcastEncodes() - before
	return row, nil
}
