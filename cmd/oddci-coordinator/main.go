// Command oddci-coordinator runs the server side of a TCP OddCI
// deployment: the Controller head-end (signed wakeup + image push) and
// the Backend (bag-of-tasks scheduler) in one process. Pair it with
// oddci-node agents:
//
//	oddci-coordinator -listen :7070 -tasks 60 -task-seconds 2
//	oddci-node -addr host:7070 -id 1 -timescale 100
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime/metrics"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/core/backend"
	"oddci/internal/obs"
	"oddci/internal/simtime"
	"oddci/internal/span"
	"oddci/internal/transport"
	"oddci/internal/workload"
)

// traceSource adapts a possibly-nil collector to the obs mux without
// handing it a typed-nil interface (which would defeat the handler's
// nil check).
func traceSource(spans *span.Collector) obs.TraceSource {
	if spans == nil {
		return nil
	}
	return spans
}

// mountPprof wires net/http/pprof and runtime/metrics-backed goroutine
// and heap gauges onto the telemetry mux, so CPU/heap profiles can be
// pulled from a live deployment.
func mountPprof(mux *http.ServeMux, reg *obs.Registry) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	readMetric := func(name string) float64 {
		sample := []metrics.Sample{{Name: name}}
		metrics.Read(sample)
		switch sample[0].Value.Kind() {
		case metrics.KindUint64:
			return float64(sample[0].Value.Uint64())
		case metrics.KindFloat64:
			return sample[0].Value.Float64()
		default:
			return 0
		}
	}
	reg.GaugeFunc("oddci_runtime_goroutines", "Live goroutines (runtime/metrics)", func() float64 {
		return readMetric("/sched/goroutines:goroutines")
	})
	reg.GaugeFunc("oddci_runtime_heap_bytes", "Heap memory occupied by live objects and dead objects not yet swept (runtime/metrics)", func() float64 {
		return readMetric("/memory/classes/heap/objects:bytes")
	})
}

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7070", "TCP listen address")
		name        = flag.String("name", "oddci-demo", "deployment name")
		tasks       = flag.Int("tasks", 60, "number of tasks in the demo job")
		taskSecs    = flag.Float64("task-seconds", 2, "reference-STB seconds per task")
		imageKB     = flag.Int("image-kb", 256, "application image size (KB)")
		prob        = flag.Float64("probability", 1, "wakeup probability gate")
		heartbeat   = flag.Duration("heartbeat", 10*time.Second, "node heartbeat period")
		jobTimeout  = flag.Duration("timeout", 30*time.Minute, "give up after this long")
		metricsAddr = flag.String("metrics", "", "serve /metrics, /varz, /healthz, /timeline and /trace on this address (e.g. 127.0.0.1:9090); empty disables")
		stateDir    = flag.String("state-dir", "", "persist controller state (signing key, wakeup journal) in this directory; a restarted coordinator keeps its identity and resumes past the recorded wakeup sequence")
		spanCap     = flag.Int("trace-spans", 4096, "span ring capacity for end-to-end causal tracing (0 disables tracing)")
		spanRate    = flag.Float64("trace-sample", 1, "head-based trace sampling rate in (0,1]; negative disables sampling (retry/error evidence still recorded)")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof and runtime goroutine/heap gauges on the -metrics mux")
		credMode    = flag.String("cred", "off", "result-credential policy: off (legacy wire), warn (verify and count, accept), enforce (reject bad echoes and penalize credibility)")
	)
	flag.Parse()

	var cred backend.CredentialMode
	switch *credMode {
	case "off":
		cred = backend.CredOff
	case "warn":
		cred = backend.CredWarn
	case "enforce":
		cred = backend.CredEnforce
	default:
		log.Fatalf("-cred %q: want off, warn, or enforce", *credMode)
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	var spans *span.Collector
	if *spanCap > 0 {
		spans = span.NewCollector(span.Config{
			Clock:      simtime.NewReal(),
			Capacity:   *spanCap,
			SampleRate: *spanRate,
		})
	}

	img := &appimage.Image{
		Name:       "demo-worker",
		Version:    1,
		EntryPoint: backend.WorkerEntryPoint,
		Payload:    make([]byte, *imageKB<<10),
	}
	coord, err := transport.NewCoordinator(transport.CoordinatorConfig{
		Listen:          *listen,
		Name:            *name,
		Image:           img,
		Probability:     *prob,
		HeartbeatPeriod: *heartbeat,
		Obs:             reg,
		Spans:           spans,
		StateDir:        *stateDir,
		CredentialMode:  cred,
	})
	if err != nil {
		log.Fatal(err)
	}
	if coord.Recovered() {
		fmt.Printf("recovered state from %s: resuming at wakeup seq %d\n", *stateDir, coord.Seq())
	}
	if reg != nil {
		mux := obs.NewHandler(reg, nil, traceSource(spans))
		if *pprofOn {
			mountPprof(mux, reg)
		}
		srv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		fmt.Printf("telemetry on http://%s/metrics (also /varz, /healthz, /trace)\n", *metricsAddr)
		if *pprofOn {
			fmt.Printf("profiling on http://%s/debug/pprof/\n", *metricsAddr)
		}
	}
	job, err := (&workload.Generator{
		Name: "demo", Tasks: *tasks, MeanSeconds: *taskSecs,
		InputBytes: 512, OutputBytes: 256,
	}).Generate()
	if err != nil {
		log.Fatal(err)
	}
	h, err := coord.Submit(job)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("oddci-coordinator listening on %s\n", coord.Addr())
	fmt.Printf("controller key: %x\n", coord.PublicKey())
	fmt.Printf("job: %d tasks × %.1f reference-STB seconds\n", *tasks, *taskSecs)

	done := make(chan time.Time, 1)
	h.OnComplete(func(at time.Time) { done <- at })
	go coord.Serve()

	select {
	case <-done:
		ms, _ := h.Makespan()
		fmt.Printf("job complete: makespan %.1fs, %d results, %d heartbeats seen, %d nodes\n",
			ms.Seconds(), len(h.Results()), coord.HeartbeatCount(), coord.NodeCount())
		coord.Drain(10 * time.Second) // let nodes poll once more and go home
	case <-time.After(*jobTimeout):
		fmt.Fprintln(os.Stderr, "timed out waiting for the job")
		coord.Close()
		os.Exit(1)
	}
}
