// Command oddci-coordinator runs the server side of a TCP OddCI
// deployment: the Controller head-end (signed wakeup + image push) and
// the Backend (bag-of-tasks scheduler) in one process. Pair it with
// oddci-node agents:
//
//	oddci-coordinator -listen :7070 -tasks 60 -task-seconds 2
//	oddci-node -addr host:7070 -id 1 -timescale 100
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"oddci/internal/appimage"
	"oddci/internal/core/backend"
	"oddci/internal/obs"
	"oddci/internal/transport"
	"oddci/internal/workload"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7070", "TCP listen address")
		name       = flag.String("name", "oddci-demo", "deployment name")
		tasks      = flag.Int("tasks", 60, "number of tasks in the demo job")
		taskSecs   = flag.Float64("task-seconds", 2, "reference-STB seconds per task")
		imageKB    = flag.Int("image-kb", 256, "application image size (KB)")
		prob       = flag.Float64("probability", 1, "wakeup probability gate")
		heartbeat  = flag.Duration("heartbeat", 10*time.Second, "node heartbeat period")
		jobTimeout = flag.Duration("timeout", 30*time.Minute, "give up after this long")
		metrics    = flag.String("metrics", "", "serve /metrics, /varz and /healthz on this address (e.g. 127.0.0.1:9090); empty disables")
		stateDir   = flag.String("state-dir", "", "persist controller state (signing key, wakeup journal) in this directory; a restarted coordinator keeps its identity and resumes past the recorded wakeup sequence")
	)
	flag.Parse()

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
	}

	img := &appimage.Image{
		Name:       "demo-worker",
		Version:    1,
		EntryPoint: backend.WorkerEntryPoint,
		Payload:    make([]byte, *imageKB<<10),
	}
	coord, err := transport.NewCoordinator(transport.CoordinatorConfig{
		Listen:          *listen,
		Name:            *name,
		Image:           img,
		Probability:     *prob,
		HeartbeatPeriod: *heartbeat,
		Obs:             reg,
		StateDir:        *stateDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	if coord.Recovered() {
		fmt.Printf("recovered state from %s: resuming at wakeup seq %d\n", *stateDir, coord.Seq())
	}
	if reg != nil {
		srv := &http.Server{Addr: *metrics, Handler: obs.NewHandler(reg, nil)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		fmt.Printf("telemetry on http://%s/metrics (also /varz, /healthz)\n", *metrics)
	}
	job, err := (&workload.Generator{
		Name: "demo", Tasks: *tasks, MeanSeconds: *taskSecs,
		InputBytes: 512, OutputBytes: 256,
	}).Generate()
	if err != nil {
		log.Fatal(err)
	}
	h, err := coord.Submit(job)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("oddci-coordinator listening on %s\n", coord.Addr())
	fmt.Printf("controller key: %x\n", coord.PublicKey())
	fmt.Printf("job: %d tasks × %.1f reference-STB seconds\n", *tasks, *taskSecs)

	done := make(chan time.Time, 1)
	h.OnComplete(func(at time.Time) { done <- at })
	go coord.Serve()

	select {
	case <-done:
		ms, _ := h.Makespan()
		fmt.Printf("job complete: makespan %.1fs, %d results, %d heartbeats seen, %d nodes\n",
			ms.Seconds(), len(h.Results()), coord.HeartbeatCount(), coord.NodeCount())
		coord.Drain(10 * time.Second) // let nodes poll once more and go home
	case <-time.After(*jobTimeout):
		fmt.Fprintln(os.Stderr, "timed out waiting for the job")
		coord.Close()
		os.Exit(1)
	}
}
