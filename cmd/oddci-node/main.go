// Command oddci-node runs one node agent of a TCP OddCI deployment: it
// connects to a coordinator, verifies the signed wakeup, checks the
// image digest, and works the bag of tasks while heartbeating — the PNA
// role as a standalone process.
//
//	oddci-node -addr host:7070 -id 1 -timescale 100
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"

	"oddci/internal/span"
	"oddci/internal/stb"
	"oddci/internal/transport"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "coordinator address")
		id        = flag.Uint64("id", 1, "node id")
		timescale = flag.Float64("timescale", 1, "divide task durations (100 = 100× faster demo)")
		standby   = flag.Bool("standby", false, "device idle in standby (faster CPU)")
		keyHex    = flag.String("controller-key", "", "pin the coordinator's ed25519 public key (hex)")
		seed      = flag.Int64("seed", 1, "probability-gate seed")
		spanCap   = flag.Int("trace-spans", 1024, "local span ring capacity; also negotiates trace_ctx so the coordinator can parent dispatch/commit spans under this node's requests (0 disables)")
	)
	flag.Parse()

	cfg := transport.NodeConfig{
		Addr:      *addr,
		NodeID:    *id,
		TimeScale: *timescale,
		Seed:      *seed,
	}
	if *spanCap > 0 {
		cfg.Spans = span.NewCollector(span.Config{Capacity: *spanCap, Seed: *seed})
	}
	if *standby {
		cfg.Mode = stb.Standby
	}
	if *keyHex != "" {
		key, err := hex.DecodeString(*keyHex)
		if err != nil {
			log.Fatalf("bad -controller-key: %v", err)
		}
		cfg.PinnedKey = key
	}
	report, err := transport.RunNode(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if !report.Joined {
		fmt.Printf("node %d: did not join (requirements or probability gate)\n", *id)
		return
	}
	fmt.Printf("node %d: done — %d tasks executed, %d heartbeats sent\n",
		*id, report.TasksDone, report.Heartbeats)
}
