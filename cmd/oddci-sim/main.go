// Command oddci-sim regenerates the paper's tables and figures (and the
// repository's ablations) from the simulation.
//
// Usage:
//
//	oddci-sim -exp all            # every experiment, full sweeps
//	oddci-sim -exp table2 -quick  # one experiment, reduced sweep
//	oddci-sim -list               # enumerate experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"oddci/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment ID, comma-separated list, or 'all'")
		quick = flag.Bool("quick", false, "reduced sweeps (CI-sized)")
		seed  = flag.Int64("seed", 2009, "random seed")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick}

	var results []*experiments.Result
	var err error
	if *exp == "all" {
		results, err = experiments.RunAll(cfg)
	} else {
		for _, id := range strings.Split(*exp, ",") {
			var res *experiments.Result
			res, err = experiments.Run(strings.TrimSpace(id), cfg)
			if res != nil {
				results = append(results, res)
			}
			if err != nil {
				break
			}
		}
	}
	for _, r := range results {
		r.Render(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "oddci-sim: %v\n", err)
		os.Exit(1)
	}
}
