// Command oddci-blast runs the repository's blastn-style aligner
// standalone: the workload the OddCI instances execute, usable directly
// against FASTA inputs or synthetic databases.
//
//	oddci-blast -db db.fasta -query query.fasta -gapped
//	oddci-blast -synth-db 1000x2000 -synth-query 256 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"oddci/blast"
)

func main() {
	var (
		dbPath     = flag.String("db", "", "database FASTA file")
		queryPath  = flag.String("query", "", "query FASTA file (first sequence used)")
		synthDB    = flag.String("synth-db", "", "synthetic database SEQSxLEN (e.g. 1000x2000)")
		synthQuery = flag.Int("synth-query", 0, "synthetic query length")
		seed       = flag.Int64("seed", 1, "seed for synthetic inputs")
		minScore   = flag.Int("min-score", 28, "report threshold")
		word       = flag.Int("word", 11, "seed word size")
		both       = flag.Bool("both-strands", true, "search plus and minus strands")
		gapped     = flag.Bool("gapped", false, "refine hits with banded gapped alignment")
		top        = flag.Int("top", 20, "print at most this many hits")
		plant      = flag.Int("plant", 0, "plant this many query fragments in a synthetic database")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	db, err := loadDB(*dbPath, *synthDB, rng)
	if err != nil {
		log.Fatal(err)
	}
	query, err := loadQuery(*queryPath, *synthQuery, rng)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *plant; i++ {
		idx := rng.Intn(len(db))
		fragLen := len(query) / 2
		if max := len(db[idx].Data) - 10; fragLen > max {
			fragLen = max
		}
		if fragLen < 20 {
			continue
		}
		qStart := rng.Intn(len(query) - fragLen + 1)
		sStart := rng.Intn(len(db[idx].Data) - fragLen + 1)
		blast.PlantHit(rng, db, query, idx, qStart, sStart, fragLen, fragLen/30)
	}

	params := blast.DefaultParams()
	params.MinScore = *minScore
	params.K = *word

	fmt.Printf("query: %d nt;  database: %d sequences, %.2f Mbases\n",
		len(query), len(db), float64(blast.DBBytes(db))/1e6)

	var hits []blast.StrandHit
	if *both {
		hits, err = blast.SearchBothStrands(query, db, params)
	} else {
		var plus []blast.Hit
		plus, err = blast.Search(query, db, params)
		for _, h := range plus {
			hits = append(hits, blast.StrandHit{Hit: h, Strand: blast.Plus})
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hits ≥ %d: %d\n\n", *minScore, len(hits))
	if len(hits) > *top {
		hits = hits[:*top]
	}

	byID := make(map[string][]byte, len(db))
	for _, s := range db {
		byID[s.ID] = s.Data
	}
	gp := blast.DefaultGapParams()
	gp.Params = params
	for _, h := range hits {
		fmt.Printf("%-12s strand=%-5s score=%-4d q=%d..%d s=%d..%d",
			h.SeqID, h.Strand, h.Score,
			h.QueryStart, h.QueryStart+h.Length, h.SubjStart, h.SubjStart+h.Length)
		if *gapped {
			q := query
			if h.Strand == blast.Minus {
				q = blast.ReverseComplement(query)
			}
			if a, err := blast.Refine(q, byID[h.SeqID], h.Hit, gp); err == nil {
				fmt.Printf("  gapped=%d identity=%.1f%% cigar=%s", a.Score, a.Identity*100, a.Cigar())
			}
		}
		fmt.Println()
	}
}

func loadDB(path, synth string, rng *rand.Rand) ([]blast.Sequence, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return blast.ReadFASTA(f)
	case synth != "":
		parts := strings.SplitN(synth, "x", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -synth-db %q, want SEQSxLEN", synth)
		}
		n, err1 := strconv.Atoi(parts[0])
		l, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || n <= 0 || l <= 0 {
			return nil, fmt.Errorf("bad -synth-db %q", synth)
		}
		return blast.RandomDB(rng, n, l, l), nil
	default:
		return nil, fmt.Errorf("provide -db or -synth-db")
	}
}

func loadQuery(path string, synth int, rng *rand.Rand) ([]byte, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		seqs, err := blast.ReadFASTA(f)
		if err != nil {
			return nil, err
		}
		return seqs[0].Data, nil
	case synth > 0:
		return blast.RandomSeq(rng, synth), nil
	default:
		return nil, fmt.Errorf("provide -query or -synth-query")
	}
}
